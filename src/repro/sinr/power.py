"""Power assignments.

The paper distinguishes:

* *uniform* power ``U`` - every sender uses the same level;
* *oblivious* assignments, where a sender's power depends only on the length
  of the link it is serving.  The two of interest are *mean* power
  ``P(l) = l**(alpha/2)`` and *linear* power ``P(l) = l**alpha``;
* *arbitrary* (instance-dependent) power, represented here by
  :class:`ExplicitPower` mapping each link to its own level.

Every assignment here multiplies the textbook form by a configurable
``scale``.  With ambient noise the textbook forms are not directly usable (a
unit-length link at power 1 cannot overcome noise), so factory helpers compute
the scale that keeps every link's cost ``c(u, v)`` at most ``2 * beta`` - the
standing assumption of Section 5.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Mapping

from ..exceptions import ConfigurationError
from ..links import Link
from .parameters import SINRParameters

__all__ = [
    "PowerAssignment",
    "UniformPower",
    "MeanPower",
    "LinearPower",
    "ExplicitPower",
    "OBLIVIOUS_SCHEMES",
    "oblivious_power_by_name",
]


class PowerAssignment(ABC):
    """Maps each link to the transmit power its sender uses for it."""

    @abstractmethod
    def power(self, link: Link) -> float:
        """Transmit power used by ``link.sender`` when serving ``link``."""

    @property
    def name(self) -> str:
        """Human-readable scheme name (used in reports)."""
        return type(self).__name__

    def powers(self, links: Iterable[Link]) -> list[float]:
        """Vector of powers for an iterable of links (in iteration order)."""
        return [self.power(link) for link in links]


class UniformPower(PowerAssignment):
    """Every sender transmits at the same fixed power level."""

    def __init__(self, level: float) -> None:
        if level <= 0:
            raise ConfigurationError(f"power level must be positive, got {level}")
        self.level = float(level)

    def power(self, link: Link) -> float:
        return self.level

    @classmethod
    def for_max_length(
        cls, params: SINRParameters, max_length: float, slack: float = 2.0
    ) -> "UniformPower":
        """Uniform power sufficient for any link up to ``max_length`` against noise."""
        return cls(params.min_power_for(max_length, slack) if params.noise > 0 else 1.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"UniformPower(level={self.level:.4g})"


class _LengthPower(PowerAssignment):
    """Base class for oblivious power of the form ``scale * length**exponent``."""

    def __init__(self, exponent: float, scale: float = 1.0) -> None:
        if scale <= 0:
            raise ConfigurationError(f"scale must be positive, got {scale}")
        if exponent < 0:
            raise ConfigurationError(f"exponent must be non-negative, got {exponent}")
        self.exponent = float(exponent)
        self.scale = float(scale)

    def power(self, link: Link) -> float:
        return self.scale * link.length**self.exponent

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(exponent={self.exponent:.3g}, scale={self.scale:.4g})"


class MeanPower(_LengthPower):
    """Mean power: ``P(l) = scale * l**(alpha/2)`` (the paper's assignment M)."""

    def __init__(self, alpha: float, scale: float = 1.0) -> None:
        super().__init__(exponent=alpha / 2.0, scale=scale)
        self.alpha = float(alpha)

    @classmethod
    def for_max_length(
        cls, params: SINRParameters, max_length: float, slack: float = 2.0
    ) -> "MeanPower":
        """Mean power scaled so every link up to ``max_length`` overcomes noise.

        ``scale = slack/(slack-1) * beta * N * max_length**(alpha/2)`` gives
        ``P(l) = scale * l**(alpha/2) >= slack/(slack-1) * beta * N * l**alpha``
        for every ``l <= max_length``, i.e. ``c(u, v) <= slack * beta``.
        """
        if max_length <= 0:
            raise ConfigurationError("max_length must be positive")
        if params.noise == 0:
            return cls(params.alpha, 1.0)
        scale = slack / (slack - 1.0) * params.beta * params.noise * max_length ** (params.alpha / 2.0)
        return cls(params.alpha, scale)


class LinearPower(_LengthPower):
    """Linear power: ``P(l) = scale * l**alpha`` (the paper's assignment L)."""

    def __init__(self, alpha: float, scale: float = 1.0) -> None:
        super().__init__(exponent=alpha, scale=scale)
        self.alpha = float(alpha)

    @classmethod
    def for_noise(cls, params: SINRParameters, slack: float = 2.0) -> "LinearPower":
        """Linear power scaled so every link overcomes noise with cost <= slack*beta."""
        if params.noise == 0:
            return cls(params.alpha, 1.0)
        return cls(params.alpha, slack / (slack - 1.0) * params.beta * params.noise)


class ExplicitPower(PowerAssignment):
    """Arbitrary per-link power levels, keyed by (sender id, receiver id).

    Args:
        assignment: mapping from ``(sender_id, receiver_id)`` or :class:`Link`
            to a positive power level.
        fallback: assignment consulted for links absent from the mapping; if
            ``None`` a missing link raises ``KeyError``.
    """

    def __init__(
        self,
        assignment: Mapping[tuple[int, int], float] | Mapping[Link, float],
        fallback: PowerAssignment | None = None,
    ) -> None:
        self._powers: dict[tuple[int, int], float] = {}
        for key, value in assignment.items():
            if value <= 0:
                raise ConfigurationError(f"power for {key} must be positive, got {value}")
            if isinstance(key, Link):
                self._powers[key.endpoint_ids] = float(value)
            else:
                self._powers[(int(key[0]), int(key[1]))] = float(value)
        self._fallback = fallback

    def power(self, link: Link) -> float:
        key = link.endpoint_ids
        if key in self._powers:
            return self._powers[key]
        if self._fallback is not None:
            return self._fallback.power(link)
        raise KeyError(f"no power assigned to link {key}")

    def set_power(self, link: Link, level: float) -> None:
        """Assign (or overwrite) the power level of a link."""
        if level <= 0:
            raise ConfigurationError(f"power must be positive, got {level}")
        self._powers[link.endpoint_ids] = float(level)

    def __len__(self) -> int:
        return len(self._powers)

    def as_dict(self) -> dict[tuple[int, int], float]:
        """Copy of the explicit (sender id, receiver id) -> power mapping."""
        return dict(self._powers)

    @property
    def fallback(self) -> PowerAssignment | None:
        """The assignment consulted for links absent from the explicit map."""
        return self._fallback

    def flattened(self) -> tuple[dict[tuple[int, int], float], PowerAssignment | None]:
        """Explicit entries merged across chained ``ExplicitPower`` fallbacks.

        Outer layers win on key collisions.  Returns the merged mapping plus
        the first non-explicit fallback (or ``None``), so repeated
        wrap-and-fallback constructions (e.g. one tree repair per churn
        epoch) can rebuild a single flat layer instead of growing an
        unbounded lookup chain.
        """
        merged: dict[tuple[int, int], float] = {}
        layer: PowerAssignment | None = self
        while isinstance(layer, ExplicitPower):
            for key, value in layer._powers.items():
                merged.setdefault(key, value)
            layer = layer._fallback
        return merged, layer


OBLIVIOUS_SCHEMES = ("uniform", "mean", "linear")


def oblivious_power_by_name(
    name: str, params: SINRParameters, max_length: float, slack: float = 2.0
) -> PowerAssignment:
    """Construct a noise-safe oblivious assignment by name.

    Raises:
        ConfigurationError: for unknown names.
    """
    if name == "uniform":
        return UniformPower.for_max_length(params, max_length, slack)
    if name == "mean":
        return MeanPower.for_max_length(params, max_length, slack)
    if name == "linear":
        return LinearPower.for_noise(params, slack)
    raise ConfigurationError(f"unknown oblivious power scheme {name!r}; options: {OBLIVIOUS_SCHEMES}")
