"""Cached struct-of-arrays views of link and node collections.

Every vectorized routine in the SINR substrate used to start by rebuilding
the same coordinate arrays from Python ``Link`` objects
(``np.array([[l.sender.x, l.sender.y] for l in links])`` and friends).  For
the hot paths of the paper's algorithms - the greedy capacity loop, first-fit
scheduling, ``Distr-Cap`` phases and the slotted channel simulation - those
rebuilds, not the numpy arithmetic, dominate the running time.

This module provides the shared engine behind all of them.  Since the
network-state refactor the caches are *views* over one
:class:`~repro.state.NetworkState` - the capacity-managed store that owns
the position/distance/attenuation/fade matrices - rather than three private
matrix copies:

* :class:`LinkArrayCache` - a struct-of-arrays view of a fixed link universe
  (sender/receiver coordinates, sender ids, lengths) computed **once**, with
  lazily cached derived structures: the sender-to-receiver distance matrix,
  per-assignment power vectors, link costs, pairwise affectance matrices, raw
  SINR vectors and the power-control gain matrix.  Any subset of the universe
  is served by integer-index slicing of the cached full-size structures.
  Each link maps to a (sender slot, receiver slot) pair of its backing
  state, so several link caches can share one node-distance store.
* :class:`NodeArrayCache` - the dense view of a node universe, used by the
  cached SINR channel (``repro.sinr.channel.CachedChannel``).  It holds an
  array of live state slots; membership changes (churn) are an O(n) re-slot
  of the view while the state patches only the damaged rows - never an
  O(n^2) rebuild per event.
* :class:`AffectanceAccumulator` - an incremental row accumulator over a
  pairwise matrix, turning the "recompute the full O(m^2) affectance matrix
  after every accepted link" pattern of the greedy loops into O(m) updates
  per accepted link and O(|set|) membership tests.

The array kernels here are the *single* implementation of the corresponding
formulas; ``repro.sinr.affectance``, ``repro.sinr.feasibility`` and
``repro.core.power_solver`` delegate to them, so cached and uncached entry
points agree bit-for-bit.

Cached arrays are returned read-only (``writeable=False``); the public
seed-era wrappers hand out fresh copies.  The cache assumes the link universe
and any :class:`~repro.sinr.power.PowerAssignment` given to it are not
mutated afterwards; call :meth:`LinkArrayCache.invalidate` after mutating an
``ExplicitPower`` in place.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, Sequence, cast

import numpy as np

from .._types import BoolArray, FloatArray
from ..contracts import hot_kernel
from ..geometry import Node
from ..links import Link
from ..obs.runtime import OBS
from ..state import (
    DecodeWorkspace,
    NetworkState,
    TiledNetworkState,
    attenuation_from_distances,
    build_tile_grid,
    far_tile_power_sums,
    pairwise_distances,
)
from .parameters import SINRParameters
from .power import PowerAssignment

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (dynamics uses sinr)
    from ..dynamics.gain import GainModel
    from ..state.tiled import TileGrid

__all__ = [
    "LinkArrayCache",
    "NodeArrayCache",
    "AffectanceAccumulator",
    "TiledAffectanceTotals",
    "affectance_matrix_from_arrays",
    "sinr_values_from_arrays",
]


def _freeze(array: np.ndarray) -> np.ndarray:
    array.flags.writeable = False
    return array


@hot_kernel()
def _take_block(
    base: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    workspace: DecodeWorkspace | None,
    key: str,
) -> np.ndarray:
    """``base[np.ix_(rows, cols)]``, gathered into arena buffers when given.

    The flat-index ``np.take`` copies exactly the cells of the requested
    rectangle - the same values as the fancy ``np.ix_`` slice, bitwise -
    without allocating and without staging whole base rows; the result is a
    view into the arena.
    """
    if workspace is None or not base.flags.c_contiguous:
        return base[np.ix_(rows, cols)]
    flat = workspace.ints(key + ".idx", rows.size, cols.size)
    np.multiply(rows[:, None], base.shape[1], out=flat)
    np.add(flat, cols[None, :], out=flat)
    block = workspace.floats(key + ".block", rows.size, cols.size)
    np.take(base.reshape(-1), flat, out=block)
    return block


@hot_kernel()
def _affectance_kernel(
    dist: np.ndarray,
    zero_mask: np.ndarray,
    col_lengths: np.ndarray,
    row_powers: np.ndarray,
    col_powers: np.ndarray,
    params: SINRParameters,
    cross_fade: np.ndarray | None = None,
    signal_fade: np.ndarray | None = None,
    workspace: DecodeWorkspace | None = None,
) -> np.ndarray:
    """Affectance of row senders on column links, from precomputed arrays.

    ``dist[i, j]`` is the distance from row link ``i``'s sender to column
    link ``j``'s receiver; ``zero_mask`` marks pairs whose affectance is
    zero by definition (same sender node, or the link itself).  This is the
    exact arithmetic of the seed ``affectance_matrix`` and must stay
    elementwise identical to it (the parity tests pin this down).

    ``cross_fade[i, j]`` optionally scales the power row sender ``i`` lands
    on column receiver ``j`` and ``signal_fade[j]`` the power column link
    ``j``'s own signal arrives with (gain-model fading); when both are
    ``None`` - the deterministic model - the original expressions run
    unmodified.

    With a ``workspace`` (deterministic model only; fading inputs fall back
    to the allocating path) the same operations run ``out=``-based on arena
    buffers: the returned matrix is a view valid until the next kernel call
    through the same workspace, and bit-for-bit equal to the allocating
    result.
    """
    cap = 1.0 + params.epsilon
    if workspace is None or cross_fade is not None or signal_fade is not None:
        if params.noise == 0:
            costs = np.full(col_lengths.shape, params.beta)
        else:
            received_col = col_powers if signal_fade is None else col_powers * signal_fade
            margins = 1.0 - params.beta * params.noise * col_lengths**params.alpha / received_col
            costs = np.where(margins > 0, params.beta / np.maximum(margins, 1e-300), np.inf)

        with np.errstate(divide="ignore", over="ignore", invalid="ignore"):
            if cross_fade is None and signal_fade is None:
                power_ratio = row_powers[:, None] / col_powers[None, :]
            else:
                landed = row_powers[:, None] if cross_fade is None else row_powers[:, None] * cross_fade
                wanted = col_powers if signal_fade is None else col_powers * signal_fade
                power_ratio = landed / wanted[None, :]
            raw = (
                costs[None, :]
                * power_ratio
                * (col_lengths[None, :] / np.maximum(dist, 1e-300)) ** params.alpha
            )
        raw = np.where(dist <= 0, np.inf, raw)
        return np.where(zero_mask, 0.0, np.minimum(cap, raw))

    ws = workspace
    rows, cols = dist.shape
    costs = ws.floats("aff.costs", cols)
    if params.noise == 0:
        costs.fill(params.beta)
    else:
        np.power(col_lengths, params.alpha, out=costs)
        np.multiply(costs, params.beta * params.noise, out=costs)
        np.divide(costs, col_powers, out=costs)
        np.subtract(1.0, costs, out=costs)  # = margins
        positive = ws.bools("aff.positive", cols)
        np.greater(costs, 0, out=positive)
        np.maximum(costs, 1e-300, out=costs)
        np.divide(params.beta, costs, out=costs)
        np.logical_not(positive, out=positive)
        np.copyto(costs, np.inf, where=positive)

    ratio = ws.floats("aff.ratio", rows, cols)
    raw = ws.floats("aff.raw", rows, cols)
    with np.errstate(divide="ignore", over="ignore", invalid="ignore"):
        np.divide(row_powers[:, None], col_powers[None, :], out=ratio)
        np.maximum(dist, 1e-300, out=raw)
        np.divide(col_lengths[None, :], raw, out=raw)
        np.power(raw, params.alpha, out=raw)
        np.multiply(costs[None, :], ratio, out=ratio)
        np.multiply(ratio, raw, out=raw)
    colocated = ws.bools("aff.colocated", rows, cols)
    np.less_equal(dist, 0, out=colocated)
    np.copyto(raw, np.inf, where=colocated)
    np.minimum(raw, cap, out=raw)
    np.copyto(raw, 0.0, where=zero_mask)
    return raw


@hot_kernel(oracle="_seed_affectance_matrix", allocates=True)
def affectance_matrix_from_arrays(
    dist: FloatArray,
    same_sender: BoolArray,
    lengths: FloatArray,
    powers: FloatArray,
    params: SINRParameters,
    cross_fade: FloatArray | None = None,
    signal_fade: FloatArray | None = None,
) -> FloatArray:
    """Pairwise affectance matrix from precomputed arrays.

    ``dist[i, j]`` is the distance from link ``i``'s sender to link ``j``'s
    receiver and ``same_sender[i, j]`` marks pairs sharing a sender node.
    ``cross_fade``/``signal_fade`` are the optional gain-model fade factors
    (see :func:`_affectance_kernel`).
    """
    m = len(lengths)
    if m == 0:
        return np.zeros((0, 0), dtype=float)
    if np.any(powers <= 0):
        raise ValueError("all link powers must be positive")
    zero_mask = same_sender | np.eye(m, dtype=bool)
    return _affectance_kernel(
        dist, zero_mask, lengths, powers, powers, params, cross_fade, signal_fade
    )


@hot_kernel(oracle="_seed_sinr_values", allocates=True)
def sinr_values_from_arrays(
    dist: FloatArray,
    same_sender: BoolArray,
    lengths: FloatArray,
    powers: FloatArray,
    params: SINRParameters,
    cross_fade: FloatArray | None = None,
    signal_fade: FloatArray | None = None,
) -> FloatArray:
    """Raw Eqn. (1) SINR at each link's receiver, from precomputed arrays."""
    m = len(lengths)
    if m == 0:
        return np.zeros(0, dtype=float)
    with np.errstate(divide="ignore"):
        received = powers[:, None] / np.maximum(dist, 1e-300) ** params.alpha
    if cross_fade is not None:
        received = received * cross_fade
    signal = powers / lengths**params.alpha
    if signal_fade is not None:
        signal = signal * signal_fade
    interference_matrix = np.where(same_sender, 0.0, received)
    interference = interference_matrix.sum(axis=0)
    return signal / (params.noise + interference)


class LinkArrayCache(Sequence):
    """Struct-of-arrays view of a fixed link universe.

    The cache behaves as an immutable sequence of its links (so it can be
    passed wherever a ``Sequence[Link]`` is expected) and serves every
    derived array - distances, powers, costs, affectance matrices, SINR
    vectors, gain matrices - from a lazily computed, reusable store.  Subsets
    are addressed by integer index into the universe.

    Args:
        links: the link universe, in index order.
        state: a :class:`~repro.state.NetworkState` containing every link
            endpoint, to share one node-geometry store with other caches.
            The caller guarantees the links were built from the state's
            current node positions *and* that the cache does not outlive a
            mutation of the state: coordinates and link lengths are
            snapshotted at construction, so a later ``move_nodes`` would
            make gathered distances disagree with them - build a fresh
            cache per topology version (the dynamics driver's per-epoch
            caches do exactly that).  When omitted, a private state over the
            unique endpoints is created lazily on first access of
            :attr:`state`, so standalone caches keep the seed construction
            cost.  Either way, if the state's node-distance matrix is
            materialized, the link-distance matrix is gathered from it
            instead of being recomputed - bitwise the same values, since
            both run the shared ``hypot`` kernel on the same coordinates.
    """

    def __init__(self, links: Iterable[Link], *, state: NetworkState | None = None) -> None:
        self._links: list[Link] = list(links)
        m = len(self._links)
        self._state = state
        self.sender_slots: np.ndarray | None = None
        self.receiver_slots: np.ndarray | None = None
        if state is not None:
            self._map_slots(state)
        if m == 0:
            self.sender_xy = _freeze(np.empty((0, 2), dtype=float))
            self.receiver_xy = _freeze(np.empty((0, 2), dtype=float))
        elif state is not None:
            self.sender_xy = _freeze(state.xy[self.sender_slots])
            self.receiver_xy = _freeze(state.xy[self.receiver_slots])
        else:
            self.sender_xy = _freeze(
                np.array([[l.sender.x, l.sender.y] for l in self._links], dtype=float)
            )
            self.receiver_xy = _freeze(
                np.array([[l.receiver.x, l.receiver.y] for l in self._links], dtype=float)
            )
        self.sender_ids = _freeze(
            np.array([l.sender.id for l in self._links], dtype=np.int64)
        )
        self.receiver_ids = _freeze(
            np.array([l.receiver.id for l in self._links], dtype=np.int64)
        )
        self.lengths = _freeze(np.array([l.length for l in self._links], dtype=float))
        self._index_by_endpoints: dict[tuple[int, int], int] | None = None
        self._distances: np.ndarray | None = None
        self._same_sender: np.ndarray | None = None
        self._powers: dict[int, tuple[PowerAssignment, np.ndarray]] = {}
        self._affectance: dict[tuple[int, SINRParameters], np.ndarray] = {}
        self._sinr: dict[tuple[int, SINRParameters], np.ndarray] = {}
        self._gain: dict[SINRParameters, np.ndarray] = {}

    # -- sequence protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._links)

    def __getitem__(self, index: int | slice) -> "Link | list[Link]":  # type: ignore[override]
        return self._links[index]

    def __iter__(self) -> Iterator[Link]:
        return iter(self._links)

    @property
    def links(self) -> tuple[Link, ...]:
        """The link universe, in index order."""
        return tuple(self._links)

    def _map_slots(self, state: NetworkState) -> None:
        """Resolve each link's endpoints to state slots (ValueError if absent)."""
        try:
            self.sender_slots = _freeze(
                np.array([state.slot_of_id(l.sender.id) for l in self._links], dtype=np.intp)
            )
            self.receiver_slots = _freeze(
                np.array([state.slot_of_id(l.receiver.id) for l in self._links], dtype=np.intp)
            )
        except KeyError as exc:
            raise ValueError(
                f"link endpoint {exc.args[0]!r} is not in the shared NetworkState"
            ) from exc

    @property
    def state(self) -> NetworkState:
        """The node-geometry store backing this cache.

        A private state over the unique link endpoints is created on first
        access when none was shared at construction, so standalone caches
        pay for the node store only if someone actually asks for it.
        """
        if self._state is None:
            self._state = NetworkState.from_links(self._links)
            self._map_slots(self._state)
        return self._state

    def index_of(self, link: Link) -> int:
        """Universe index of a link, keyed by its (sender id, receiver id)."""
        if self._index_by_endpoints is None:
            self._index_by_endpoints = {
                l.endpoint_ids: i for i, l in enumerate(self._links)
            }
        return self._index_by_endpoints[link.endpoint_ids]

    def indices_of(self, links: Iterable[Link]) -> np.ndarray:
        """Universe indices of an iterable of links, in iteration order."""
        return np.array([self.index_of(link) for link in links], dtype=np.intp)

    # -- cached structures ---------------------------------------------------

    def _fades(
        self,
        params: SINRParameters,
        rows: np.ndarray | None = None,
        cols: np.ndarray | None = None,
    ) -> tuple[np.ndarray | None, np.ndarray | None]:
        """Gain-model fade factors for a (row links x column links) block.

        Returns ``(cross_fade, signal_fade)``: the fade of every row sender's
        power at every column receiver, and the aligned per-link fade of each
        column link's own signal.  ``None`` indices mean the whole universe;
        both results are ``None`` under the deterministic model, which keeps
        every kernel on its original code path.  Link-level fades use the
        slot-free draw (``slot=None``) - feasibility and scheduling are
        slotless contexts; the slotted channel applies per-slot fades itself.
        """
        model = params.effective_gain_model
        if model is None:
            return None, None
        row_tx = self.sender_ids if rows is None else self.sender_ids[rows]
        col_tx = self.sender_ids if cols is None else self.sender_ids[cols]
        col_rx = self.receiver_ids if cols is None else self.receiver_ids[cols]
        return model.fade(row_tx, col_rx), model.fade_pairs(col_tx, col_rx)

    def distance_matrix(self) -> np.ndarray:
        """``D[i, j]`` = distance from link ``i``'s sender to link ``j``'s receiver.

        Gathered from the backing state's node-distance matrix when that is
        already materialized (several caches then share one O(n^2) store);
        otherwise computed directly from the endpoint coordinates.  Both
        paths evaluate the same ``hypot`` kernel on the same floats, so the
        results are bitwise identical.
        """
        if self._distances is None:
            if self._state is not None and self._state.has_distances:
                full = self._state.distance_matrix()
                self._distances = _freeze(
                    full[np.ix_(self.sender_slots, self.receiver_slots)]
                )
            else:
                self._distances = _freeze(
                    pairwise_distances(self.sender_xy, self.receiver_xy)
                )
        return self._distances

    def same_sender_mask(self) -> np.ndarray:
        """Boolean matrix marking link pairs whose senders are the same node."""
        if self._same_sender is None:
            self._same_sender = _freeze(
                self.sender_ids[:, None] == self.sender_ids[None, :]
            )
        return self._same_sender

    def powers(self, power: PowerAssignment) -> np.ndarray:
        """Per-link power vector under ``power`` (cached per assignment)."""
        key = id(power)
        entry = self._powers.get(key)
        if entry is None or entry[0] is not power:
            entry = (power, _freeze(np.array(power.powers(self._links), dtype=float)))
            self._powers[key] = entry
        return entry[1]

    def affectance_matrix(
        self,
        power: PowerAssignment,
        params: SINRParameters,
        indices: Sequence[int] | np.ndarray | None = None,
    ) -> np.ndarray:
        """Pairwise affectance matrix of the universe (or an index subset).

        The full matrix is computed once per ``(power, params)`` pair; any
        subset is an ``np.ix_`` slice of it.  Returned arrays are read-only.
        """
        key = (id(power), params)
        matrix = self._affectance.get(key)
        if matrix is None:
            cross_fade, signal_fade = self._fades(params)
            matrix = _freeze(
                affectance_matrix_from_arrays(
                    self.distance_matrix(),
                    self.same_sender_mask(),
                    self.lengths,
                    self.powers(power),
                    params,
                    cross_fade,
                    signal_fade,
                )
            )
            self._affectance[key] = matrix
        if indices is None:
            return matrix
        idx = np.asarray(indices, dtype=np.intp)
        return matrix[np.ix_(idx, idx)]

    def affectance_block(
        self,
        rows: Sequence[int] | np.ndarray,
        cols: Sequence[int] | np.ndarray,
        power: PowerAssignment,
        params: SINRParameters,
        *,
        workspace: DecodeWorkspace | None = None,
    ) -> np.ndarray:
        """Affectance of ``rows``' senders on the ``cols`` links.

        Elementwise equal to ``affectance_matrix(power, params)[np.ix_(rows,
        cols)]`` but costs only O(|rows| * |cols|), so callers that read a
        rectangular block (e.g. transmitters x candidates in a ``Distr-Cap``
        slot) need not materialize the full universe matrix.  If the full
        matrix happens to be cached already, it is sliced instead.  With a
        ``workspace``, the distance gather and the kernel run on arena
        buffers (the returned block is a view valid until the next call
        through the same workspace).
        """
        rows = np.asarray(rows, dtype=np.intp)
        cols = np.asarray(cols, dtype=np.intp)
        full = self._affectance.get((id(power), params))
        if full is not None:
            return full[np.ix_(rows, cols)]
        powers = self.powers(power)
        if np.any(powers <= 0):
            raise ValueError("all link powers must be positive")
        if rows.size == 0 or cols.size == 0:
            return np.zeros((rows.size, cols.size), dtype=float)
        if self._distances is not None:
            dist = _take_block(self._distances, rows, cols, workspace, "aff.dist")
        elif self._state is not None and self._state.has_distances:
            dist = _take_block(
                self._state.distance_matrix(),
                self.sender_slots[rows],
                self.receiver_slots[cols],
                workspace,
                "aff.dist",
            )
        else:
            dist = pairwise_distances(self.sender_xy[rows], self.receiver_xy[cols])
        if workspace is None:
            zero_mask = (
                self.sender_ids[rows][:, None] == self.sender_ids[cols][None, :]
            ) | (rows[:, None] == cols[None, :])
        else:
            zero_mask = workspace.bools("aff.zero", rows.size, cols.size)
            np.equal(
                self.sender_ids[rows][:, None],
                self.sender_ids[cols][None, :],
                out=zero_mask,
            )
            same_index = workspace.bools("aff.self", rows.size, cols.size)
            np.equal(rows[:, None], cols[None, :], out=same_index)
            np.logical_or(zero_mask, same_index, out=zero_mask)
        cross_fade, signal_fade = self._fades(params, rows, cols)
        return _affectance_kernel(
            dist,
            zero_mask,
            self.lengths[cols],
            powers[rows],
            powers[cols],
            params,
            cross_fade,
            signal_fade,
            workspace,
        )

    def sinr_values(
        self,
        power: PowerAssignment,
        params: SINRParameters,
        indices: Sequence[int] | np.ndarray | None = None,
    ) -> np.ndarray:
        """Raw SINR at each receiver with the whole universe (or subset) active.

        Unlike :meth:`affectance_matrix`, the SINR of a link depends on which
        other links are active, so subsets are recomputed from the cached
        distance slices rather than sliced from the full-universe vector.
        """
        if indices is None:
            key = (id(power), params)
            values = self._sinr.get(key)
            if values is None:
                cross_fade, signal_fade = self._fades(params)
                values = _freeze(
                    sinr_values_from_arrays(
                        self.distance_matrix(),
                        self.same_sender_mask(),
                        self.lengths,
                        self.powers(power),
                        params,
                        cross_fade,
                        signal_fade,
                    )
                )
                self._sinr[key] = values
            return values
        idx = np.asarray(indices, dtype=np.intp)
        sub = np.ix_(idx, idx)
        cross_fade, signal_fade = self._fades(params, idx, idx)
        return sinr_values_from_arrays(
            self.distance_matrix()[sub],
            self.same_sender_mask()[sub],
            self.lengths[idx],
            self.powers(power)[idx],
            params,
            cross_fade,
            signal_fade,
        )

    def gain_matrix(self, params: SINRParameters) -> np.ndarray:
        """Channel gain matrix ``G[i, j] = 1 / d(sender_j, receiver_i)**alpha``.

        This is the transpose orientation of :meth:`distance_matrix` (row =
        receiver, column = sender), matching ``repro.core.power_solver``.
        """
        gains = self._gain.get(params)
        if gains is None:
            dist = self.distance_matrix().T
            # The shared d**alpha kernel stores colocated pairs as 0.0, so
            # the reciprocal is inf there - the same values the seed's
            # np.where(dist <= 0, inf, 1 / max(dist, 1e-300)**alpha) yields.
            with np.errstate(divide="ignore"):
                gains = 1.0 / attenuation_from_distances(dist, params.alpha)
            model = params.effective_gain_model
            if model is not None:
                # fade(sender_ids, receiver_ids)[j, i] is sender j's fade at
                # receiver i; transpose into the (receiver, sender) layout.
                fade = model.fade(self.sender_ids, self.receiver_ids)
                if fade is not None:
                    gains = gains * fade.T
            gains = _freeze(gains)
            self._gain[params] = gains
        return gains

    def invalidate(self, power: PowerAssignment | None = None) -> None:
        """Drop cached powers/affectances (for ``power``, or all assignments).

        Needed only when a power assignment handed to this cache has been
        mutated in place (e.g. ``ExplicitPower.set_power``).
        """
        if power is None:
            self._powers.clear()
            self._affectance.clear()
            self._sinr.clear()
            return
        self._powers.pop(id(power), None)
        for store in (self._affectance, self._sinr):
            for key in [k for k in store if k[0] == id(power)]:
                del store[key]


class NodeArrayCache:
    """Dense view of a node universe over a shared :class:`NetworkState`.

    The view maps its dense indices ``0..n-1`` (the indexing every slot
    engine and channel uses) to live slots of the backing state, which owns
    the O(n^2) distance/attenuation/fade matrices.  Whole-universe matrices
    are served as zero-copy basic slices while the view is *contiguous*
    (slots ``0..n-1``, the static common case) and as cached gathers
    otherwise; the slot-decode hot paths use the block accessors, which
    gather exactly the requested rectangle straight from the state.

    Membership changes flow through :meth:`add_nodes`/:meth:`remove_ids`/
    :meth:`sync`: the state patches only the damaged rows (O(k * capacity))
    and the view re-slots itself in O(n) - sustained churn never pays an
    O(n^2) rebuild per event.

    Args:
        nodes: the node universe, in dense-index order.  When ``state`` is
            given they must already be live in it; when omitted together
            with ``state``, the view covers the state's live nodes in
            insertion order.
        state: an existing :class:`~repro.state.NetworkState` to view,
            shared with other caches/channels; a private one is created from
            ``nodes`` when omitted.
    """

    def __init__(
        self,
        nodes: Iterable[Node] | None = None,
        *,
        state: NetworkState | None = None,
    ) -> None:
        if state is None:
            state = NetworkState(() if nodes is None else nodes)
            nodes = None
        self._state = state
        if nodes is None:
            slots = state.live_slots()
        else:
            try:
                slots = np.array(
                    [state.slot_of_id(node.id) for node in nodes], dtype=np.intp
                )
            except KeyError as exc:
                raise ValueError(
                    f"node {exc.args[0]!r} is not in the shared NetworkState"
                ) from exc
        self._set_slots(slots)

    def _set_slots(self, slots: np.ndarray) -> None:
        """(Re)anchor the view: dense index ``k`` maps to state slot ``slots[k]``."""
        self._slots = _freeze(np.asarray(slots, dtype=np.intp).copy())
        self.ids = _freeze(self._state.ids[self._slots].astype(np.int64))
        self._index_by_id = {int(node_id): k for k, node_id in enumerate(self.ids)}
        self._contiguous = bool(
            np.array_equal(self._slots, np.arange(self._slots.size, dtype=np.intp))
        )
        # View-level caches of whole-universe structures: (base-or-version,
        # matrix) entries resolved by _dense_view.
        self._xy_entry: tuple | None = None
        self._dense_entries: dict[object, tuple] = {}

    # -- membership ----------------------------------------------------------

    @property
    def state(self) -> NetworkState:
        """The geometry/gain store backing this view."""
        return self._state

    @property
    def slots(self) -> np.ndarray:
        """State slot of each dense index."""
        return self._slots

    @property
    def nodes(self) -> list[Node]:
        """The node universe, in dense-index order (current positions)."""
        return [self._state.node_at(slot) for slot in self._slots.tolist()]

    def __len__(self) -> int:
        return self._slots.size

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._index_by_id

    def index_of_id(self, node_id: int) -> int:
        """Universe index of the node with the given id (KeyError if absent)."""
        return self._index_by_id[node_id]

    def add_nodes(self, nodes: Iterable[Node]) -> np.ndarray:
        """Add brand-new nodes to the shared state and append them to the view.

        The state patches only the new rows/columns (O(k * capacity),
        amortized growth included); the view extends its slot map.  Returns
        the assigned state slots.
        """
        slots = self._state.add_nodes(nodes)
        if slots.size:
            self._set_slots(np.concatenate([self._slots, slots]))
        return slots

    def remove_ids(self, node_ids: Iterable[int]) -> None:
        """Remove nodes from the shared state and drop them from the view (O(n))."""
        id_list = [int(node_id) for node_id in node_ids]
        if not id_list:
            return
        self._state.remove_nodes(id_list)
        keep = ~np.isin(self.ids, np.array(id_list, dtype=np.int64))
        self._set_slots(self._slots[keep])

    def sync(self, nodes: Iterable[Node]) -> None:
        """Re-anchor the view to ``nodes`` (all must be live in the state).

        Used after a churn event applied directly to the state (e.g. by
        ``TreeRepairer.integrate``): the view adopts the given dense order -
        typically the repaired tree's node order - in O(n) bookkeeping.
        """
        self._set_slots(
            np.array([self._state.slot_of_id(node.id) for node in nodes], dtype=np.intp)
        )

    # -- whole-universe structures -------------------------------------------

    @property
    def xy(self) -> np.ndarray:
        """``(n, 2)`` coordinates in dense order (always current)."""
        base = self._state.xy
        entry = self._xy_entry
        if self._contiguous:
            # A basic slice stays valid across in-place patches; only a
            # capacity growth (new base array) invalidates it.
            if entry is None or entry[0] is not base:
                entry = (base, base[: self._slots.size])
                self._xy_entry = entry
        else:
            if entry is None or entry[0] != self._state.version:
                entry = (self._state.version, _freeze(base[self._slots]))
                self._xy_entry = entry
        return entry[1]

    def _dense_view(self, key: object, base: np.ndarray) -> np.ndarray:
        """Whole-universe (n, n) slice of a capacity-sized state matrix.

        Contiguous views are zero-copy basic slices (valid across in-place
        patches); non-contiguous views are gathered copies refreshed when
        the state's version moves.
        """
        n = self._slots.size
        entry = self._dense_entries.get(key)
        if self._contiguous:
            if entry is None or entry[0] is not base:
                entry = (base, base[:n, :n])
                self._dense_entries[key] = entry
        else:
            if entry is None or entry[0] != self._state.version:
                entry = (
                    self._state.version,
                    _freeze(base[np.ix_(self._slots, self._slots)]),
                )
                self._dense_entries[key] = entry
        return entry[1]

    def distance_matrix(self) -> np.ndarray:
        """Full node-to-node distance matrix, in dense order."""
        return self._dense_view("dist", self._state.distance_matrix())

    def attenuation_matrix(self, alpha: float) -> np.ndarray:
        """Path-loss denominator ``max(d, 1e-300)**alpha``, in dense order.

        Entries with ``d <= 0`` are ``0.0`` (shared-kernel convention) so
        that dividing a positive power by the matrix yields ``inf`` there -
        exactly the ``np.where(dist <= 0, np.inf, ...)`` of the uncached
        decode.
        """
        return self._dense_view(("att", alpha), self._state.attenuation_matrix(alpha))

    def fade_matrix(self, model: "GainModel") -> np.ndarray | None:
        """Full-universe fade matrix of a *slot-invariant* gain model.

        Static fades (e.g. log-normal shadowing) are pure functions of node
        ids - positions never enter - so the state hashes the matrix once
        per model, patches only new rows under churn, and the view merely
        slices it.  ``None`` (unit gain) stays ``None``.
        """
        base = self._state.fade_matrix(model)
        if base is None:
            return None
        return self._dense_view(("fade", model), base)

    # -- block accessors (slot-decode hot paths) -----------------------------

    def _slot_rows_cols(
        self, rows: np.ndarray, cols: np.ndarray | None
    ) -> tuple[np.ndarray, np.ndarray]:
        r = self._slots[np.asarray(rows, dtype=np.intp)]
        c = self._slots if cols is None else self._slots[np.asarray(cols, dtype=np.intp)]
        return r, c

    @hot_kernel()
    def _gather_block(
        self,
        base: np.ndarray,
        rows: np.ndarray,
        cols: np.ndarray | None,
        workspace: DecodeWorkspace | None,
        key: str,
    ) -> np.ndarray:
        """Rectangle gather from a capacity-sized state matrix.

        With a workspace, the whole-view contiguous case (the static hot
        path) is a single row-take into the arena - the leading ``n``
        columns of the gathered rows *are* the block - and general
        rectangles are two-stage takes; without one, the classic ``np.ix_``
        gather allocates.  All paths copy the same cells bit-for-bit.
        """
        r, c = self._slot_rows_cols(rows, cols)
        if workspace is None:
            return base[np.ix_(r, c)]
        if cols is None and self._contiguous:
            stage = workspace.floats(key + ".rows", r.size, base.shape[1])
            np.take(base, r, axis=0, out=stage)
            return stage[:, : self._slots.size]
        return _take_block(base, r, c, workspace, key)

    def _sparse_state(self) -> "TiledNetworkState":
        # The dispatch contract is the materializes_matrices flag, not the
        # concrete type; the cast records that a non-materializing state
        # speaks the TiledNetworkState rectangle protocol.
        return cast("TiledNetworkState", self._state)

    def distance_block(
        self,
        rows: np.ndarray,
        cols: np.ndarray | None = None,
        *,
        workspace: DecodeWorkspace | None = None,
    ) -> np.ndarray:
        """Distance rectangle ``rows x cols`` (``cols=None`` = whole view).

        Gathered straight from the state matrix - O(|rows| * |cols|), no
        dense (n, n) copy even when the view is non-contiguous.  Over a
        non-materializing (tiled) state the same rectangle is computed from
        coordinates by the shared kernels - bitwise-equal values, still
        O(|rows| * |cols|), no matrix behind it.
        """
        if not self._state.materializes_matrices:
            r, c = self._slot_rows_cols(rows, cols)
            return self._sparse_state().distance_rect(r, c, workspace=workspace, key="cache.dist")
        return self._gather_block(
            self._state.distance_matrix(), rows, cols, workspace, "cache.dist"
        )

    def attenuation_block(
        self,
        alpha: float,
        rows: np.ndarray,
        cols: np.ndarray | None = None,
        *,
        workspace: DecodeWorkspace | None = None,
    ) -> np.ndarray:
        """Attenuation rectangle ``rows x cols`` (``cols=None`` = whole view).

        Over a tiled state the whole-view row gather (the decode hot path's
        ``cols=None`` shape) is served through the state's budget-bounded
        FIFO row cache; explicit rectangles are computed fresh from
        coordinates.  Both are bitwise equal to a dense-matrix gather.
        """
        if not self._state.materializes_matrices:
            r, c = self._slot_rows_cols(rows, cols)
            sparse = self._sparse_state()
            if cols is None and self._contiguous:
                full_rows = sparse.attenuation_rows(
                    alpha, r, workspace=workspace, key="cache.att.rows"
                )
                return full_rows[:, : self._slots.size]
            return sparse.attenuation_rect(alpha, r, c, workspace=workspace, key="cache.att")
        return self._gather_block(
            self._state.attenuation_matrix(alpha), rows, cols, workspace, "cache.att"
        )

    def fade_block(
        self,
        model: "GainModel",
        rows: np.ndarray,
        cols: np.ndarray | None = None,
        *,
        workspace: DecodeWorkspace | None = None,
    ) -> np.ndarray | None:
        """Slot-invariant fade rectangle, or ``None`` for unit gain."""
        if not self._state.materializes_matrices:
            r, c = self._slot_rows_cols(rows, cols)
            return self._sparse_state().fade_rect(model, r, c)
        base = self._state.fade_matrix(model)
        if base is None:
            return None
        return self._gather_block(base, rows, cols, workspace, "cache.fade")

    # -- mutation ------------------------------------------------------------

    def update_positions(self, indices: np.ndarray, new_xy: np.ndarray) -> None:
        """Move a subset of nodes, patching the state matrices incrementally.

        The mobility models of ``repro.dynamics`` call this between slots:
        instead of rebuilding the O(n^2) distance and attenuation matrices
        from scratch, the state recomputes only the rows and columns of the
        ``k`` moved nodes - O(k * capacity) work per step, bit-for-bit
        identical to a full rebuild from the new coordinates (``hypot`` is
        sign-insensitive, so mirroring rows into columns is exact).  Node
        objects are refreshed in the state, so :attr:`nodes` always reflects
        the current positions.

        Args:
            indices: dense view indices of the nodes that moved.
            new_xy: their new coordinates, shape ``(len(indices), 2)``.
        """
        idx = np.asarray(indices, dtype=np.intp)
        if idx.size == 0:
            return
        self._state.move_nodes(self._slots[idx], new_xy)


class AffectanceAccumulator:
    """Incremental row accumulator over a pairwise affectance matrix.

    Tracks, for a growing/shrinking member set ``S`` of universe indices, the
    vector ``totals[j] = sum_{i in S} matrix[i, j]`` for *every* universe
    index ``j``.  Adding or removing a member is one vector operation (O(m));
    querying the affectance a candidate would suffer from ``S`` is O(1), and
    the worst total inside ``S`` if a candidate joined is O(|S|).  This
    replaces the full O(m^2) matrix recomputation the greedy loops used to
    perform per accepted link.

    Member contributions are accumulated in insertion order, so the totals
    match the equivalent sequential scalar sums bit-for-bit (removal is a
    subtraction and may leave the usual floating-point residue; the parity
    tests bound it).
    """

    def __init__(self, matrix: np.ndarray, members: Iterable[int] = ()) -> None:
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError(f"matrix must be square, got shape {matrix.shape}")
        self._matrix = matrix
        self._totals = np.zeros(matrix.shape[0], dtype=float)
        self._members: list[int] = []
        self._in_set = np.zeros(matrix.shape[0], dtype=bool)
        self._member_array: np.ndarray | None = None
        for index in members:
            self.add(index)

    @property
    def matrix(self) -> np.ndarray:
        """The underlying pairwise matrix."""
        return self._matrix

    @property
    def members(self) -> tuple[int, ...]:
        """Current member indices, in insertion order."""
        return tuple(self._members)

    def member_indices(self) -> np.ndarray:
        """Current member indices as an integer array (cached between edits)."""
        if self._member_array is None:
            self._member_array = np.array(self._members, dtype=np.intp)
        return self._member_array

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, index: int) -> bool:
        return bool(self._in_set[index])

    def total(self, index: int) -> float:
        """Affectance the member set currently exerts on universe index ``index``."""
        return float(self._totals[index])

    def totals(self) -> np.ndarray:
        """Copy of the full per-index totals vector."""
        return self._totals.copy()

    def add(self, index: int) -> None:
        """Add a universe index to the member set (O(m))."""
        index = int(index)
        if self._in_set[index]:
            raise ValueError(f"index {index} is already a member")
        self._totals += self._matrix[index]
        self._in_set[index] = True
        self._members.append(index)
        self._member_array = None

    def remove(self, index: int) -> None:
        """Remove a universe index from the member set (O(m))."""
        index = int(index)
        if not self._in_set[index]:
            raise ValueError(f"index {index} is not a member")
        self._totals -= self._matrix[index]
        self._in_set[index] = False
        self._members.remove(index)
        self._member_array = None

    def max_total_with(self, index: int) -> float:
        """Worst per-member total if ``index`` joined the member set.

        Covers both directions: the affectance the candidate would suffer
        from the members, and each member's total after the candidate's row
        is added.  The candidate must not already be a member.
        """
        index = int(index)
        if self._in_set[index]:
            raise ValueError(f"index {index} is already a member")
        worst = self._totals[index]
        if self._members:
            mem = self.member_indices()
            member_totals = self._totals[mem] + self._matrix[index, mem]
            worst = max(worst, member_totals.max())
        return float(worst)

    def fits(self, index: int, limit: float) -> bool:
        """Whether adding ``index`` keeps every total at most ``limit``."""
        return self.max_total_with(index) <= limit


#: Target mean receiver population per tile when TiledAffectanceTotals
#: derives a tile size from the receiver bounding box.
_TARGET_LINKS_PER_TILE = 8


class TiledAffectanceTotals:
    """Near-exact / far-aggregated affectance row totals over a link universe.

    The tiled counterpart of :class:`AffectanceAccumulator`: it tracks
    ``totals[j] ~= sum_{i in S} affectance(i, j)`` for a growing/shrinking
    member set ``S`` *without ever materializing the O(m^2) affectance
    matrix* - the structure that walls the dense accumulator out of
    m >= 50k universes (a 50k x 50k float matrix is 20 GB).

    The decomposition splits each member's row by receiver distance:

    * **near** (receiver within :attr:`near_cutoff` of the member's sender,
      tile-radius padded): the exact per-pair affectance from
      :meth:`LinkArrayCache.affectance_block` - bit-for-bit the dense
      matrix entries, accumulated in the same insertion order, so a run
      whose pairs are all near is *bitwise equal* to the dense accumulator;
    * **far**: the member contributes ``P_i / d(s_i, c_t)**alpha`` to each
      far tile ``t`` through its centroid (kernel
      :func:`repro.state.far_tile_power_sums`), and a receiver reads its
      tile's aggregate scaled by its own precomputed row factor
      ``K_j = cost_j * l_j**alpha / P_j`` - O(tiles) per add instead of
      O(m).  Same-sender pairs (zero affectance by definition, self pair
      included) are corrected exactly at query time from the recorded
      add-time far tiles.

    **Error contract.**  For every far pair the relative error of the
    centroid approximation is at most ``(1 + r/d)**alpha - 1`` (tile radius
    ``r``, centroid distance ``d``); the running maximum actually incurred
    is :meth:`far_error_bound`, so ``|total(j) - dense_total(j)| <=
    far_error_bound() * dense_total(j)`` - *provided no far pair's raw
    affectance reaches the ``1 + epsilon`` cap* (the aggregate carries no
    per-pair cap).  The default near cutoff guarantees that proviso by
    construction: it is floored at the distance beyond which even the
    strongest sender's raw affectance on any link stays below the cap.
    The bound is reported into a backing :class:`TiledNetworkState` (when
    given) so ``far_error_bound()`` surfaces per run.

    Limitations (documented, enforced): every link cost must be finite
    (feasible SINR margin) and ``params.effective_gain_model`` must be
    ``None`` - per-pair fades have no tile aggregate.

    Args:
        cache: the link universe (struct-of-arrays view).
        power: per-link power assignment.
        params: SINR parameters (deterministic gain model only).
        state: optional backing :class:`TiledNetworkState`; supplies the
            tile size, couples the near cutoff to its throttled near radius
            and receives the incurred error bound / near-load samples.
        tile_size: receiver-tile edge length override.
        near_cutoff: exactness radius override (floored at the cap-safety
            distance either way).
        members: initial member indices, added in order.
    """

    def __init__(
        self,
        cache: LinkArrayCache,
        power: PowerAssignment,
        params: SINRParameters,
        *,
        state: TiledNetworkState | None = None,
        tile_size: float | None = None,
        near_cutoff: float | None = None,
        members: Iterable[int] = (),
    ) -> None:
        if params.effective_gain_model is not None:
            raise ValueError(
                "TiledAffectanceTotals requires the deterministic gain model; "
                "per-pair fades cannot be tile-aggregated"
            )
        self._cache = cache
        self._power = power
        self._params = params
        self._state = state
        m = len(cache)
        powers = cache.powers(power)
        if np.any(powers <= 0):
            raise ValueError("all link powers must be positive")
        self._powers = powers
        lengths = cache.lengths
        # Per-column row factor K_j = cost_j * l_j**alpha / P_j: exactly the
        # cost arithmetic of _affectance_kernel, so near and far halves
        # price a column identically.
        if params.noise == 0:
            costs = np.full(m, params.beta)
        else:
            margins = 1.0 - params.beta * params.noise * lengths**params.alpha / powers
            costs = np.where(margins > 0, params.beta / np.maximum(margins, 1e-300), np.inf)
        if m and not np.all(np.isfinite(costs)):
            raise ValueError(
                "every link must have a feasible SINR margin (finite cost); "
                "infinite-cost links make far-field aggregation meaningless"
            )
        self._K = costs * lengths**params.alpha / powers
        if tile_size is None:
            tile_size = state.tile_size if state is not None else self._derive_tile_size()
        if tile_size <= 0:
            raise ValueError(f"tile_size must be positive, got {tile_size}")
        self._tile_size = float(tile_size)
        self._grid: "TileGrid" = build_tile_grid(
            cache.receiver_xy, np.arange(m, dtype=np.intp), self._tile_size, m
        )
        self._tile_of = self._grid.tile_index_by_slot
        # Cap-safety floor: beyond this distance even the strongest sender's
        # raw affectance on any column stays below the 1 + epsilon cap, so
        # the uncapped far aggregate cannot overshoot a capped dense entry.
        cap = 1.0 + params.epsilon
        if m:
            p_max = float(powers.max())
            self._cap_floor = float(
                (lengths * (costs * p_max / (powers * cap)) ** (1.0 / params.alpha)).max()
            )
        else:
            self._cap_floor = 0.0
        self._near_cutoff_override = None if near_cutoff is None else float(near_cutoff)
        # Column indices per sender id, for the exact same-sender far
        # correction (zero affectance by definition).
        cols_by_sender: dict[int, list[int]] = {}
        for j, sender_id in enumerate(cache.sender_ids.tolist()):
            cols_by_sender.setdefault(int(sender_id), []).append(j)
        self._cols_by_sender = {
            sender_id: np.array(cols, dtype=np.intp)
            for sender_id, cols in cols_by_sender.items()
        }
        self._exact = np.zeros(m, dtype=float)
        self._far = np.zeros(self._grid.tile_count, dtype=float)
        self._members: list[int] = []
        self._member_array: np.ndarray | None = None
        self._in_set = np.zeros(m, dtype=bool)
        self._members_by_sender: dict[int, list[int]] = {}
        self._near_idx: dict[int, np.ndarray] = {}
        self._far_tiles: dict[int, np.ndarray] = {}
        self._far_tile_sets: dict[int, frozenset[int]] = {}
        self._near_pairs = 0
        self._incurred_bound = 0.0
        for index in members:
            self.add(index)

    def _derive_tile_size(self) -> float:
        receivers = self._cache.receiver_xy
        m = receivers.shape[0]
        if m == 0:
            return 1.0
        span = float(max(np.ptp(receivers[:, 0]), np.ptp(receivers[:, 1])))
        if span <= 0.0:
            return 1.0
        tiles_per_axis = max(1.0, np.ceil(np.sqrt(m / _TARGET_LINKS_PER_TILE)))
        return span / tiles_per_axis

    # -- configuration / reporting -------------------------------------------

    @property
    def tile_size(self) -> float:
        """Edge length of the receiver tiles."""
        return self._tile_size

    @property
    def near_cutoff(self) -> float:
        """Current exactness radius around a member's sender.

        Tracks the backing state's (possibly throttled) near radius when one
        is attached, and is always floored at the cap-safety distance - the
        error contract never degrades below soundness, whatever the
        throttle does.
        """
        if self._near_cutoff_override is not None:
            base = self._near_cutoff_override
        elif self._state is not None:
            base = self._state.near_cutoff
        else:
            base = 2.0 * self._tile_size
        return max(base, self._cap_floor)

    def far_error_bound(self) -> float:
        """Worst-case relative far-field error actually incurred (running max).

        ``0.0`` until a far aggregation happens; an all-near run is exact.
        """
        return self._incurred_bound

    @property
    def near_pairs_held(self) -> int:
        """Exact per-pair entries currently accumulated (the near memory load)."""
        return self._near_pairs

    # -- membership ----------------------------------------------------------

    @property
    def members(self) -> tuple[int, ...]:
        """Current member indices, in insertion order."""
        return tuple(self._members)

    def member_indices(self) -> np.ndarray:
        """Current member indices as an integer array (cached between edits)."""
        if self._member_array is None:
            self._member_array = np.array(self._members, dtype=np.intp)
        return self._member_array

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, index: int) -> bool:
        return bool(self._in_set[index])

    # -- the near/far split ---------------------------------------------------

    def _split_tiles(self, index: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(near tile indices, far tile indices, centroid distances) for a sender."""
        grid = self._grid
        sx = self._cache.sender_xy[index, 0]
        sy = self._cache.sender_xy[index, 1]
        d = np.hypot(grid.centroids[:, 0] - sx, grid.centroids[:, 1] - sy)
        far_mask = d > self.near_cutoff + grid.radii
        return np.flatnonzero(~far_mask), np.flatnonzero(far_mask), d

    def _near_members(self, near_tiles: np.ndarray) -> np.ndarray:
        grid = self._grid
        if near_tiles.size == 0:
            return np.empty(0, dtype=np.intp)
        parts = [grid.members(int(t)) for t in near_tiles.tolist()]
        return np.concatenate(parts)

    def _far_contrib(self, index: int, tiles: np.ndarray) -> np.ndarray:
        """The member's per-tile far aggregate - one kernel call, so the add,
        the remove and the same-sender correction all reproduce the exact
        same floats."""
        return far_tile_power_sums(
            self._cache.sender_xy[index : index + 1],
            self._powers[index : index + 1],
            self._grid.centroids[tiles],
            self._params.alpha,
        )

    def add(self, index: int) -> None:
        """Add a universe index to the member set (O(near pairs + tiles))."""
        index = int(index)
        if self._in_set[index]:
            raise ValueError(f"index {index} is already a member")
        near_tiles, far_tiles, d = self._split_tiles(index)
        near_idx = self._near_members(near_tiles)
        if near_idx.size:
            block = self._cache.affectance_block(
                np.array([index], dtype=np.intp), near_idx, self._power, self._params
            )
            self._exact[near_idx] += block[0]
        if far_tiles.size:
            self._far[far_tiles] += self._far_contrib(index, far_tiles)
            ratios = self._grid.radii[far_tiles] / np.maximum(d[far_tiles], 1e-300)
            bound = float((1.0 + ratios.max()) ** self._params.alpha - 1.0)
            if bound > self._incurred_bound:
                self._incurred_bound = bound
                if self._state is not None:
                    self._state.note_far_error_bound(bound)
        self._in_set[index] = True
        self._members.append(index)
        self._member_array = None
        self._members_by_sender.setdefault(
            int(self._cache.sender_ids[index]), []
        ).append(index)
        self._near_idx[index] = near_idx
        self._far_tiles[index] = far_tiles
        self._far_tile_sets[index] = frozenset(far_tiles.tolist())
        self._near_pairs += int(near_idx.size)
        if self._state is not None:
            self._state.note_near_load(self._near_pairs)
        if OBS.enabled:
            OBS.registry.gauge("tiled.near_pairs").set(float(self._near_pairs))

    def remove(self, index: int) -> None:
        """Remove a member, exactly inverting its add-time contributions."""
        index = int(index)
        if not self._in_set[index]:
            raise ValueError(f"index {index} is not a member")
        near_idx = self._near_idx.pop(index)
        far_tiles = self._far_tiles.pop(index)
        del self._far_tile_sets[index]
        if near_idx.size:
            block = self._cache.affectance_block(
                np.array([index], dtype=np.intp), near_idx, self._power, self._params
            )
            self._exact[near_idx] -= block[0]
        if far_tiles.size:
            self._far[far_tiles] -= self._far_contrib(index, far_tiles)
        self._in_set[index] = False
        self._members.remove(index)
        self._member_array = None
        self._members_by_sender[int(self._cache.sender_ids[index])].remove(index)
        self._near_pairs -= int(near_idx.size)
        if self._state is not None:
            self._state.note_near_load(self._near_pairs)
        if OBS.enabled:
            OBS.registry.gauge("tiled.near_pairs").set(float(self._near_pairs))

    # -- queries --------------------------------------------------------------

    def total(self, index: int) -> float:
        """Approximate affectance the member set exerts on universe index ``index``.

        Exact near contributions plus the receiver tile's far aggregate
        scaled by ``K_index``, with the member's same-sender far mass (zero
        affectance by definition) subtracted exactly as it was added.
        """
        index = int(index)
        tile = int(self._tile_of[index])
        value = float(self._exact[index]) + float(self._K[index]) * float(self._far[tile])
        for i in self._members_by_sender.get(int(self._cache.sender_ids[index]), ()):
            if tile in self._far_tile_sets[i]:
                tile_arr = np.array([tile], dtype=np.intp)
                value -= float(self._K[index]) * float(self._far_contrib(i, tile_arr)[0])
        return value

    def totals(self) -> np.ndarray:
        """Per-index totals vector (near exact, far tile-aggregated)."""
        out = self._exact + self._K * self._far[self._tile_of]
        for i in self._members:
            cols = self._cols_by_sender[int(self._cache.sender_ids[i])]
            far_set = self._far_tile_sets[i]
            if not far_set or cols.size == 0:
                continue
            col_tiles = self._tile_of[cols]
            mask = np.fromiter(
                (int(t) in far_set for t in col_tiles.tolist()),
                dtype=bool,
                count=cols.size,
            )
            affected = cols[mask]
            if affected.size:
                corr = far_tile_power_sums(
                    self._cache.sender_xy[i : i + 1],
                    self._powers[i : i + 1],
                    self._grid.centroids[self._tile_of[affected]],
                    self._params.alpha,
                )
                out[affected] -= self._K[affected] * corr
        return out

    def max_total_with(self, index: int) -> float:
        """Worst per-member total if ``index`` joined the member set.

        Same contract as :meth:`AffectanceAccumulator.max_total_with`; the
        candidate's row onto the members is computed exactly, the standing
        totals carry the far-field approximation (within
        :meth:`far_error_bound`).
        """
        index = int(index)
        if self._in_set[index]:
            raise ValueError(f"index {index} is already a member")
        totals = self.totals()
        worst = float(totals[index])
        if self._members:
            mem = self.member_indices()
            row = self._cache.affectance_block(
                np.array([index], dtype=np.intp), mem, self._power, self._params
            )[0]
            worst = max(worst, float((totals[mem] + row).max()))
        return worst

    def fits(self, index: int, limit: float) -> bool:
        """Whether adding ``index`` keeps every total at most ``limit``."""
        return self.max_total_with(index) <= limit
