"""Feasibility of link sets under the SINR constraint.

A set of links is *feasible* under a power assignment when every link's
receiver attains the required SINR ``beta`` while all the other links'
senders transmit simultaneously - equivalently (Section 5) when the total
affectance on every link is at most 1.

A feasible set may still not be *schedulable in one slot* for reasons outside
Eqn. (1): a node cannot transmit and receive at the same time (half-duplex)
and cannot transmit two different messages at once.  Those structural checks
live here too, so schedulers and validators share a single source of truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..links import Link
from .arrays import LinkArrayCache
from .parameters import SINRParameters
from .power import PowerAssignment

__all__ = [
    "FeasibilityReport",
    "sinr_values",
    "is_feasible",
    "feasibility_report",
    "violates_half_duplex",
    "duplicate_senders",
    "is_schedulable_slot",
    "FEASIBILITY_TOLERANCE",
]

# Numerical slack on the affectance <= 1 test (pure floating-point tolerance).
FEASIBILITY_TOLERANCE = 1e-9


@dataclass(frozen=True)
class FeasibilityReport:
    """Detailed outcome of a feasibility check.

    Attributes:
        feasible: whether every link meets the SINR constraint and the set is
            structurally schedulable in a single slot.
        sinr_ok: whether the affectance condition alone holds.
        half_duplex_ok: whether no node both sends and receives in the set.
        senders_ok: whether no node is the sender of two different links.
        worst_affectance: largest total incoming affectance over the links.
        worst_link_index: index (into the input order) of the worst link.
    """

    feasible: bool
    sinr_ok: bool
    half_duplex_ok: bool
    senders_ok: bool
    worst_affectance: float
    worst_link_index: int | None


def sinr_values(
    links: Sequence[Link], power: PowerAssignment, params: SINRParameters
) -> np.ndarray:
    """SINR achieved at each link's receiver with all the set's senders active.

    This is the raw Eqn. (1) quantity (not the thresholded affectance), useful
    for reporting margins.  ``links`` may be a
    :class:`~repro.sinr.arrays.LinkArrayCache` to reuse cached structures.
    """
    cache = links if isinstance(links, LinkArrayCache) else LinkArrayCache(links)
    return np.array(cache.sinr_values(power, params))


def violates_half_duplex(links: Iterable[Link]) -> bool:
    """Whether some node appears both as a sender and as a receiver."""
    link_list = list(links)
    senders = {l.sender.id for l in link_list}
    receivers = {l.receiver.id for l in link_list}
    return bool(senders & receivers)


def duplicate_senders(links: Iterable[Link]) -> bool:
    """Whether some node is the sender of two distinct links."""
    seen: set[int] = set()
    for link in links:
        if link.sender.id in seen:
            return True
        seen.add(link.sender.id)
    return False


def feasibility_report(
    links: Sequence[Link],
    power: PowerAssignment,
    params: SINRParameters,
    *,
    check_structure: bool = True,
) -> FeasibilityReport:
    """Full feasibility diagnosis of a candidate single-slot link set."""
    cache = links if isinstance(links, LinkArrayCache) else LinkArrayCache(links)
    link_list = list(cache)
    if not link_list:
        return FeasibilityReport(True, True, True, True, 0.0, None)
    matrix = cache.affectance_matrix(power, params)
    incoming = matrix.sum(axis=0)
    worst_index = int(np.argmax(incoming))
    worst = float(incoming[worst_index])
    # The affectance condition folds noise into the link cost c(u, v), which is
    # infinite (and the affectance cap hides it) when a link cannot even beat
    # noise on its own; check the raw SINR as well so such links are rejected.
    raw_sinr = cache.sinr_values(power, params)
    noise_ok = bool(np.all(raw_sinr >= params.beta * (1.0 - 1e-9)))
    sinr_ok = bool(worst <= 1.0 + FEASIBILITY_TOLERANCE) and noise_ok
    half_duplex_ok = not violates_half_duplex(link_list)
    senders_ok = not duplicate_senders(link_list)
    if check_structure:
        feasible = sinr_ok and half_duplex_ok and senders_ok
    else:
        feasible = sinr_ok
    return FeasibilityReport(
        feasible=feasible,
        sinr_ok=sinr_ok,
        half_duplex_ok=half_duplex_ok,
        senders_ok=senders_ok,
        worst_affectance=worst,
        worst_link_index=worst_index,
    )


def is_feasible(
    links: Sequence[Link],
    power: PowerAssignment,
    params: SINRParameters,
    *,
    check_structure: bool = False,
) -> bool:
    """Whether the link set satisfies the SINR constraint under ``power``.

    Args:
        links: candidate simultaneous links.
        power: power assignment.
        params: physical-model parameters.
        check_structure: additionally require half-duplex compliance and
            distinct senders (what a real slot needs).  The paper's notion of
            feasibility is the SINR condition only, so this defaults to False.
    """
    return feasibility_report(links, power, params, check_structure=check_structure).feasible


def is_schedulable_slot(
    links: Sequence[Link], power: PowerAssignment, params: SINRParameters
) -> bool:
    """Whether the links can all be served in one physical slot."""
    return feasibility_report(links, power, params, check_structure=True).feasible
