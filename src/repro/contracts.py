"""Hot-kernel contract registry.

A *hot kernel* is a function on the per-slot decode path whose behaviour is
pinned by three contracts (established in PRs 4–5):

* it does not allocate at steady state — scratch comes from a
  :class:`~repro.state.DecodeWorkspace` arena and results are written through
  ``out=`` (kernels registered with ``allocates=True`` are exempt: they
  *produce* a fresh array by design, e.g. the geometry constructors);
* its ``out=`` destinations never alias a read operand;
* it has a parity **oracle** — a slow-but-obvious reference counterpart that
  at least one test compares against bit-for-bit.

:func:`hot_kernel` records those facts.  It is a zero-overhead identity
decorator at runtime (the function object passes through untouched, no
wrapper frame on the hot path); its value is the metadata:

* ``tools/repro_lint`` detects the decorator *statically* — rule RL001 bans
  allocation idioms inside registered kernels and rule RL005 demands the
  declared oracle be co-tested;
* :data:`KERNEL_REGISTRY` exposes the same facts at runtime so tests can
  enumerate every registered kernel and assert registry/linter agreement.

Registering a new kernel means adding one decorator line::

    @hot_kernel(oracle="decode_reference")
    def decode_arrays(...): ...

and the lint gate starts enforcing the contracts on it immediately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, TypeVar

__all__ = ["KernelContract", "KERNEL_REGISTRY", "hot_kernel", "kernel_function"]

_F = TypeVar("_F", bound=Callable)


@dataclass(frozen=True)
class KernelContract:
    """Registered facts about one hot kernel."""

    name: str
    qualname: str
    module: str
    oracle: str | None
    allocates: bool


#: qualified name (``module:qualname``) -> contract, populated at import time.
KERNEL_REGISTRY: dict[str, KernelContract] = {}

#: qualified name -> the raw registered function object.  Consumed by
#: ``repro.obs.kernels.instrument_kernels`` to build timing wrappers without
#: re-resolving qualnames; not public API beyond :func:`kernel_function`.
_KERNEL_FUNCS: dict[str, Callable] = {}


def kernel_function(key: str) -> Callable:
    """The raw function registered under ``key`` (``module:qualname``)."""
    return _KERNEL_FUNCS[key]


def hot_kernel(*, oracle: str | None = None, allocates: bool = False) -> Callable[[_F], _F]:
    """Register a function as a hot kernel; returns it unchanged.

    Args:
        oracle: name of the reference counterpart a parity test compares
            against (required by RL005 for public kernels).
        allocates: ``True`` for kernels whose job *is* to produce a fresh
            array (geometry constructors, the arena's own grower); exempts
            the function from RL001's no-allocation check.
    """

    def register(func: _F) -> _F:
        target = getattr(func, "__func__", func)  # unwrap staticmethod
        contract = KernelContract(
            name=target.__name__,
            qualname=target.__qualname__,
            module=target.__module__,
            oracle=oracle,
            allocates=allocates,
        )
        key = f"{contract.module}:{contract.qualname}"
        KERNEL_REGISTRY[key] = contract
        _KERNEL_FUNCS[key] = target
        return func

    return register
