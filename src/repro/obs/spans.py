"""Span tracing: timed scopes that become Perfetto slices.

Two shapes, both no-ops when telemetry is off:

* :func:`span` — a context manager for code with lexical scope::

      with span("netsim.phase", label="broadcast"):
          driver.run_phase(...)

* :func:`begin_span` / :func:`end_span` — explicit begin/end for the batch
  slot engine and other sites where the scope crosses method boundaries.
  ``begin_span`` returns ``None`` when disabled; ``end_span(None)`` is a
  cheap no-op, so call sites need no branching of their own beyond the
  enabled-guard idiom.

Timing uses ``perf_counter_ns`` for durations (monotonic) and anchors the
wall-clock epoch once per process (``time_ns``), so span start times are
consistent within a trace and comparable across trial-fabric workers.
Spans record wall time only — no RNG, no mutation — and are excluded from
cross-worker determinism claims (counters carry those; see
:mod:`repro.obs.metrics`).
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator

from .runtime import OBS

__all__ = ["ActiveSpan", "begin_span", "end_span", "span"]

# Wall-clock anchor: ts_ns = _EPOCH_NS + (perf_counter_ns() - _EPOCH_PERF_NS).
_EPOCH_NS = time.time_ns()
_EPOCH_PERF_NS = time.perf_counter_ns()


class ActiveSpan:
    """An open span handle returned by :func:`begin_span`."""

    __slots__ = ("labels", "name", "start_perf_ns")

    def __init__(self, name: str, labels: dict[str, Any]) -> None:
        self.name = name
        self.labels = labels
        self.start_perf_ns = time.perf_counter_ns()


def begin_span(name: str, **labels: Any) -> ActiveSpan | None:
    """Open a span; returns ``None`` when telemetry is off."""
    if not OBS.enabled:
        return None
    return ActiveSpan(name, labels)


def end_span(handle: ActiveSpan | None) -> None:
    """Close a span opened by :func:`begin_span` (``None`` is a no-op)."""
    if handle is None:
        return
    stop_perf_ns = time.perf_counter_ns()
    OBS.registry.record_span(
        handle.name,
        _EPOCH_NS + (handle.start_perf_ns - _EPOCH_PERF_NS),
        stop_perf_ns - handle.start_perf_ns,
        handle.labels,
        pid=os.getpid(),
        tid=threading.get_ident(),
    )


@contextmanager
def span(name: str, **labels: Any) -> Iterator[None]:
    """Record a timed scope as one span event (no-op when disabled)."""
    if not OBS.enabled:
        yield
        return
    handle = ActiveSpan(name, labels)
    try:
        yield
    finally:
        end_span(handle)
