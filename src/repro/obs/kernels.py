"""On-demand kernel timing: wrap ``KERNEL_REGISTRY`` entries with timers.

The ``@hot_kernel`` decorator is a zero-overhead identity at runtime — the
registered function object passes through untouched, so the per-slot path
never pays a wrapper frame.  :func:`instrument_kernels` preserves that
invariant by wrapping *on demand*: it swaps each registered kernel for a
timing wrapper **at its definition sites** (module attribute, class
``__dict__`` entry, ``from ... import`` aliases across ``repro.*``
modules), and :meth:`KernelInstrumentation.restore` puts the originals
back.  Uninstrumented processes are byte-for-byte the PR-5 fast path.

The wrapper itself follows the enabled-guard idiom: with telemetry off it
is one attribute load and a tail call; with telemetry on it adds two
counter bumps per call —

* ``kernel.calls{kernel=<name>}`` — invocation count,
* ``kernel.time_ns{kernel=<name>}`` — *inclusive* wall time (a kernel that
  calls another registered kernel counts the callee's time too, exactly
  like a cProfile cumtime column).

Timing never touches RNG or kernel arguments, so instrumented runs stay
bit-identical to plain runs (pinned by the parity tests and the bench's
always-on parity assert).
"""

from __future__ import annotations

import functools
import importlib
import sys
import time
from typing import Any, Callable

from ..contracts import KERNEL_REGISTRY, _KERNEL_FUNCS
from .runtime import OBS

__all__ = [
    "KernelInstrumentation",
    "instrument_kernels",
    "kernel_timers_active",
    "uninstrument_kernels",
]

#: Modules whose import populates ``KERNEL_REGISTRY`` with every registered
#: kernel; imported up front so instrumentation coverage does not depend on
#: what the caller happened to import first.
_KERNEL_HOME_MODULES = (
    "repro.state.kernels",
    "repro.state.scratch",
    "repro.sinr.arrays",
    "repro.sinr.channel",
)

#: One patched definition site: ``setattr(owner, attr, original)`` undoes it.
_Patch = tuple[Any, str, Any]


def _timed_wrapper(kernel_name: str, func: Callable) -> Callable:
    """Build the timing wrapper for one kernel function."""
    # Counter objects are cached per registry identity so the enabled path
    # pays one `is` check instead of two keyed lookups per call.
    cached_registry: Any = None
    calls_counter: Any = None
    time_counter: Any = None

    @functools.wraps(func)
    def wrapper(*args: Any, **kwargs: Any) -> Any:
        if not OBS.enabled:
            return func(*args, **kwargs)
        nonlocal cached_registry, calls_counter, time_counter
        start = time.perf_counter_ns()
        try:
            return func(*args, **kwargs)
        finally:
            elapsed = time.perf_counter_ns() - start
            registry = OBS.registry
            if registry is not cached_registry:
                cached_registry = registry
                calls_counter = registry.counter("kernel.calls", kernel=kernel_name)
                time_counter = registry.counter("kernel.time_ns", kernel=kernel_name)
            calls_counter.value += 1
            time_counter.value += elapsed

    wrapper.__repro_kernel_timer__ = kernel_name  # type: ignore[attr-defined]
    return wrapper


def _defining_owner(module_name: str, qualname: str) -> tuple[Any, str] | None:
    """Resolve ``(owner, attribute)`` for a kernel's definition site."""
    module = sys.modules.get(module_name)
    if module is None:  # pragma: no cover - home modules imported above
        return None
    parts = qualname.split(".")
    owner: Any = module
    for part in parts[:-1]:
        owner = getattr(owner, part, None)
        if owner is None:  # pragma: no cover - registry/module drift
            return None
    return owner, parts[-1]


class KernelInstrumentation:
    """Handle over the set of patched definition sites."""

    __slots__ = ("_patches", "kernel_names")

    def __init__(self, patches: list[_Patch], kernel_names: tuple[str, ...]) -> None:
        self._patches = patches
        self.kernel_names = kernel_names

    def restore(self) -> None:
        """Put every original function object back (idempotent)."""
        global _ACTIVE
        for owner, attr, original in reversed(self._patches):
            setattr(owner, attr, original)
        self._patches.clear()
        if _ACTIVE is self:
            _ACTIVE = None

    def __enter__(self) -> "KernelInstrumentation":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.restore()


_ACTIVE: KernelInstrumentation | None = None


def kernel_timers_active() -> bool:
    """Whether :func:`instrument_kernels` wrappers are currently installed."""
    return _ACTIVE is not None


def instrument_kernels() -> KernelInstrumentation:
    """Install timing wrappers on every registered hot kernel.

    Idempotent: a second call while wrappers are installed returns the
    existing handle.  Counters only accumulate while ``OBS.enabled`` is
    true, so installing wrappers ahead of time is cheap (the disabled
    branch of each wrapper) — but the truly-zero-overhead state is
    restored wrappers, which the overhead benchmark pins at <=2%.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        return _ACTIVE
    for module_name in _KERNEL_HOME_MODULES:
        importlib.import_module(module_name)
    patches: list[_Patch] = []
    wrappers: dict[int, Callable] = {}
    for key, contract in sorted(KERNEL_REGISTRY.items()):
        func = _KERNEL_FUNCS[key]
        wrapper = _timed_wrapper(contract.name, func)
        wrappers[id(func)] = wrapper
        site = _defining_owner(contract.module, contract.qualname)
        if site is None:  # pragma: no cover - registry/module drift
            continue
        owner, attr = site
        current = owner.__dict__.get(attr) if hasattr(owner, "__dict__") else None
        if isinstance(current, staticmethod):
            if current.__func__ is func:
                patches.append((owner, attr, current))
                setattr(owner, attr, staticmethod(wrapper))
        elif current is func:
            patches.append((owner, attr, current))
            setattr(owner, attr, wrapper)
    # `from .kernels import ...` aliases: rebind every repro module attribute
    # that still points at an original kernel function object.
    for module in list(sys.modules.values()):
        name = getattr(module, "__name__", "")
        if module is None or not (name == "repro" or name.startswith("repro.")):
            continue
        for attr, value in list(vars(module).items()):
            wrapper = wrappers.get(id(value))
            if wrapper is not None:
                patches.append((module, attr, value))
                setattr(module, attr, wrapper)
    _ACTIVE = KernelInstrumentation(
        patches, tuple(contract.name for contract in KERNEL_REGISTRY.values())
    )
    return _ACTIVE


def uninstrument_kernels() -> None:
    """Restore the active instrumentation, if any (safe when none is).

    The inverse convenience of :func:`instrument_kernels` for callers that
    hold no handle - the trial-fabric worker uses it to mirror the parent's
    timer state, so a worker reused after a timed sweep goes back to the
    byte-for-byte fast path when the next sweep runs untimed.
    """
    if _ACTIVE is not None:
        _ACTIVE.restore()
