"""``repro.obs`` — zero-overhead telemetry for the whole stack.

One subsystem, five pieces:

* :mod:`~repro.obs.metrics` — counters / gauges / fixed-bucket histograms
  keyed by ``(name, labels)``, plus recorded span events, in a
  :class:`MetricsRegistry` that merges exactly across trial-fabric workers;
* :mod:`~repro.obs.runtime` — the process-global :data:`OBS` switch and the
  enabled-guard idiom (``if OBS.enabled: ...``) that makes disabled
  telemetry cost one attribute load;
* :mod:`~repro.obs.spans` — ``with span("netsim.phase", label=...)``
  context managers and explicit :func:`begin_span`/:func:`end_span` for
  the batch slot engine;
* :mod:`~repro.obs.kernels` — :func:`instrument_kernels`, on-demand timing
  wrappers over every ``@hot_kernel`` in ``KERNEL_REGISTRY`` (the identity
  -decorator fast path is untouched until you ask);
* :mod:`~repro.obs.export` — JSONL, Prometheus text, and Chrome
  trace-event JSON (Perfetto-loadable) exporters.

``python -m repro.obs report`` runs an instrumented experiment and prints
per-kernel wall-time and counter tables (see :mod:`~repro.obs.report`).

Two invariants, both pinned by tests and benchmarks: disabled telemetry
costs nothing measurable (repro-lint RL011 enforces the guard idiom inside
hot-kernel bodies), and telemetry never perturbs results (no RNG, no input
mutation — runs are bit-identical on vs. off at any worker count).
"""

from __future__ import annotations

from .export import (
    chrome_trace,
    prometheus_text,
    read_jsonl,
    registry_to_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from .kernels import (
    KernelInstrumentation,
    instrument_kernels,
    kernel_timers_active,
    uninstrument_kernels,
)
from .profiling import top_allocations
from .metrics import (
    DEFAULT_TIME_BUCKETS_NS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SpanEvent,
)
from .runtime import OBS, disable, enable, get_registry, telemetry, telemetry_enabled
from .spans import ActiveSpan, begin_span, end_span, span

__all__ = [
    "ActiveSpan",
    "Counter",
    "DEFAULT_TIME_BUCKETS_NS",
    "Gauge",
    "Histogram",
    "KernelInstrumentation",
    "MetricsRegistry",
    "OBS",
    "SpanEvent",
    "begin_span",
    "chrome_trace",
    "disable",
    "enable",
    "end_span",
    "get_registry",
    "instrument_kernels",
    "kernel_timers_active",
    "prometheus_text",
    "read_jsonl",
    "registry_to_jsonl",
    "span",
    "telemetry",
    "telemetry_enabled",
    "top_allocations",
    "uninstrument_kernels",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]
