"""``python -m repro.obs report`` — instrumented experiment summary.

Runs one registered experiment (any ``E*``/``F*`` id from
``repro.experiments.ALL_EXPERIMENTS``) with telemetry enabled and kernel
timers installed, then prints

* the per-kernel wall-time table (``kernel.calls`` joined with
  ``kernel.time_ns``),
* every counter the run accumulated (simulator slots, netsim fault
  tallies, repair patches, ...), and
* optionally a tracemalloc top-allocation view from a second,
  uninstrumented pass (``--allocs``),

and exports the registry on request as a Perfetto-loadable Chrome trace
(``--trace``), metrics JSONL (``--jsonl``) or Prometheus text (``--prom``).

Usage:
    python -m repro.obs report                       # E13, quick config
    python -m repro.obs report --experiment E1 --workers 2
    python -m repro.obs report --experiment E1 --store tiled
    python -m repro.obs report --trace e13.trace.json --jsonl e13.jsonl
    python -m repro.obs report --allocs --top 20
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from pathlib import Path

from .export import prometheus_text, write_chrome_trace, write_jsonl
from .kernels import instrument_kernels
from .profiling import top_allocations
from .runtime import telemetry

__all__ = ["build_parser", "main", "run_report"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs report",
        description="Run one registered experiment with telemetry on and summarize it.",
    )
    parser.add_argument(
        "--experiment",
        default="E13",
        help="experiment id (E1..E13, F1..F3); default E13",
    )
    size = parser.add_mutually_exclusive_group()
    size.add_argument("--quick", action="store_true", help="quick config (the default)")
    size.add_argument("--full", action="store_true", help="full-size sweep")
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="trial-fabric workers; counters merge exactly at any count (default 1)",
    )
    parser.add_argument(
        "--store",
        choices=("dense", "tiled"),
        default=None,
        help="geometry store override; 'tiled' runs the sweep on the O(n) "
        "store and surfaces its gauges (near-pairs, resident bytes)",
    )
    parser.add_argument(
        "--trace",
        type=Path,
        default=None,
        help="write a Perfetto-loadable Chrome trace JSON here",
    )
    parser.add_argument(
        "--jsonl", type=Path, default=None, help="write the metrics registry as JSONL here"
    )
    parser.add_argument(
        "--prom", type=Path, default=None, help="write Prometheus text exposition here"
    )
    parser.add_argument(
        "--no-kernel-timers",
        action="store_true",
        help="skip instrument_kernels(): counters and spans only",
    )
    parser.add_argument(
        "--allocs",
        action="store_true",
        help="add a second, uninstrumented pass under tracemalloc",
    )
    parser.add_argument(
        "--top", type=int, default=15, help="rows in the allocation table (default 15)"
    )
    return parser


def run_report(args: argparse.Namespace) -> int:
    """Execute the ``report`` subcommand; returns a process exit code."""
    # Imported here, not at module top: the experiment harness itself uses
    # repro.obs, and the report CLI is the one obs module that looks back up
    # the stack - deferring keeps ``import repro.obs`` light and cycle-free.
    from ..analysis.reporting import (
        counters_table,
        format_table,
        gauges_table,
        kernel_time_table,
    )
    from ..experiments import ALL_EXPERIMENTS, ExperimentConfig

    experiment_id = args.experiment.upper()
    runner = ALL_EXPERIMENTS.get(experiment_id)
    if runner is None:
        print(
            f"unknown experiment {args.experiment!r}; pick one of "
            + ", ".join(ALL_EXPERIMENTS),
            file=sys.stderr,
        )
        return 2
    config = ExperimentConfig.full() if args.full else ExperimentConfig.quick()
    config = dataclasses.replace(config, workers=args.workers, store=args.store)

    instrumentation = None if args.no_kernel_timers else instrument_kernels()
    try:
        with telemetry() as registry:
            result = runner(config)
    finally:
        if instrumentation is not None:
            instrumentation.restore()

    print(f"== {result.experiment_id}: {result.title}")
    print(f"   rows: {len(result.rows)}, workers: {config.workers}, summary: {result.summary}")
    print()
    if instrumentation is not None:
        print(kernel_time_table(registry, title="per-kernel wall time (inclusive)"))
        print()
    print(counters_table(registry, title="counters"))
    if any(True for _ in registry.gauges()):
        print()
        print(gauges_table(registry, title="gauges (last value)"))
    print(f"\nspans recorded: {len(registry.spans)}")

    if args.trace is not None:
        write_chrome_trace(registry, args.trace)
        print(f"chrome trace -> {args.trace} (open in https://ui.perfetto.dev)")
    if args.jsonl is not None:
        write_jsonl(registry, args.jsonl)
        print(f"metrics jsonl -> {args.jsonl}")
    if args.prom is not None:
        Path(args.prom).write_text(prometheus_text(registry))
        print(f"prometheus text -> {args.prom}")

    if args.allocs:
        repo_root = Path(__file__).resolve().parents[3]
        _, rows = top_allocations(
            lambda: runner(config), top=args.top, strip_prefix=str(repo_root)
        )
        print()
        print(
            format_table(
                rows,
                columns=("kib", "blocks", "location"),
                title=f"top {args.top} allocation sites (uninstrumented re-run)",
            )
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point shared by ``__main__`` and tests."""
    args = build_parser().parse_args(argv)
    return run_report(args)


if __name__ == "__main__":
    raise SystemExit(main())
