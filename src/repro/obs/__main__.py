"""``python -m repro.obs`` dispatch: currently the ``report`` subcommand."""

from __future__ import annotations

import sys

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    """Dispatch ``python -m repro.obs <subcommand>``."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print("usage: python -m repro.obs report [options]", file=sys.stderr)
        print("       (see `python -m repro.obs report --help`)", file=sys.stderr)
        return 0 if argv else 2
    command, rest = argv[0], argv[1:]
    if command == "report":
        from .report import main as report_main

        return report_main(rest)
    print(f"unknown subcommand {command!r}; expected 'report'", file=sys.stderr)
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
