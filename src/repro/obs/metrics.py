"""Metrics instruments and the registry that owns them.

Three instrument kinds, all keyed by ``(name, labels)``:

* :class:`Counter` — a monotone sum (``inc``).  Counters are the *exact*
  instruments: every increment is a deterministic consequence of the
  simulated protocol, so merged counters are bit-identical at any worker
  count (the parity tests pin this).
* :class:`Gauge` — a last-written value (``set``).  Merges keep the last
  value in submission order, which the trial fabric makes deterministic by
  merging chunk payloads in sweep order.
* :class:`Histogram` — fixed upper-bound buckets plus sum/count.  Bucket
  *counts* of deterministic observations merge exactly; duration
  observations are wall-clock and therefore never part of parity claims.

A :class:`MetricsRegistry` also records completed :class:`SpanEvent` rows
(see :mod:`repro.obs.spans`) so one object carries everything an exporter
needs.  Registries convert to plain-JSON *payloads* (:meth:`MetricsRegistry
.to_payload`) that cross process boundaries — each trial-fabric worker
accumulates into a local registry and the parent merges the payloads — and
:meth:`MetricsRegistry.snapshot` is the canonical comparable form the
round-trip and determinism tests equate.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Any, Iterator, Mapping, Sequence

__all__ = [
    "Counter",
    "DEFAULT_TIME_BUCKETS_NS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanEvent",
]

#: Default histogram buckets for durations in nanoseconds: 1 µs .. 10 s.
DEFAULT_TIME_BUCKETS_NS: tuple[float, ...] = tuple(
    float(10**exp) for exp in range(3, 11)
)

#: Internal registry key: ``(name, ((label, value), ...))``.
_Key = tuple[str, tuple[tuple[str, str], ...]]


def _labels_key(labels: Mapping[str, Any]) -> tuple[tuple[str, str], ...]:
    """Canonical label tuple: sorted, values stringified (JSON-stable)."""
    return tuple((key, str(value)) for key, value in sorted(labels.items()))


class Counter:
    """A monotone accumulator."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: int | float = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount


class Gauge:
    """A last-written value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: int | float = 0

    def set(self, value: int | float) -> None:
        self.value = value


class Histogram:
    """Fixed-bucket histogram: counts per upper bound plus an overflow slot.

    Args:
        buckets: strictly increasing upper bounds; an observation lands in
            the first bucket whose bound is >= the value, or in the implicit
            overflow slot past the last bound.
    """

    __slots__ = ("buckets", "count", "counts", "total")

    def __init__(self, buckets: Sequence[float] = DEFAULT_TIME_BUCKETS_NS) -> None:
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b >= a for b, a in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must be strictly increasing: {bounds}")
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.total: float = 0.0
        self.count: int = 0

    def observe(self, value: int | float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.total += value
        self.count += 1


@dataclass(frozen=True)
class SpanEvent:
    """One completed span, ready for the Chrome trace exporter.

    Attributes:
        name: span name (Perfetto slice title).
        labels: canonical label tuple (exported as trace-event ``args``).
        ts_ns: wall-clock start, nanoseconds since the Unix epoch.
        dur_ns: monotonic duration in nanoseconds.
        pid: process that recorded the span (one Perfetto track group per
            trial-fabric worker).
        tid: thread that recorded the span.
    """

    name: str
    labels: tuple[tuple[str, str], ...]
    ts_ns: int
    dur_ns: int
    pid: int
    tid: int


class MetricsRegistry:
    """Owns every instrument and span of one telemetry scope."""

    __slots__ = ("_counters", "_gauges", "_histograms", "spans")

    def __init__(self) -> None:
        self._counters: dict[_Key, Counter] = {}
        self._gauges: dict[_Key, Gauge] = {}
        self._histograms: dict[_Key, Histogram] = {}
        self.spans: list[SpanEvent] = []

    # -- instrument access ---------------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        key = (name, _labels_key(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = (name, _labels_key(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS_NS,
        **labels: Any,
    ) -> Histogram:
        key = (name, _labels_key(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(buckets)
        return instrument

    def inc(self, name: str, amount: int | float = 1, **labels: Any) -> None:
        """Shorthand: bump the counter ``(name, labels)`` by ``amount``."""
        self.counter(name, **labels).inc(amount)

    def record_span(
        self,
        name: str,
        ts_ns: int,
        dur_ns: int,
        labels: Mapping[str, Any],
        *,
        pid: int,
        tid: int,
    ) -> None:
        self.spans.append(
            SpanEvent(
                name=name,
                labels=_labels_key(labels),
                ts_ns=int(ts_ns),
                dur_ns=int(dur_ns),
                pid=pid,
                tid=tid,
            )
        )

    # -- iteration (exporters, tables) --------------------------------------

    def counters(self) -> Iterator[tuple[str, dict[str, str], int | float]]:
        """``(name, labels, value)`` rows in sorted key order."""
        for (name, labels), instrument in sorted(self._counters.items()):
            yield name, dict(labels), instrument.value

    def gauges(self) -> Iterator[tuple[str, dict[str, str], int | float]]:
        for (name, labels), instrument in sorted(self._gauges.items()):
            yield name, dict(labels), instrument.value

    def histograms(self) -> Iterator[tuple[str, dict[str, str], Histogram]]:
        for (name, labels), instrument in sorted(self._histograms.items()):
            yield name, dict(labels), instrument

    def counter_value(self, name: str, **labels: Any) -> int | float:
        """Current value of one counter (0 if it was never touched)."""
        instrument = self._counters.get((name, _labels_key(labels)))
        return 0 if instrument is None else instrument.value

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self.spans.clear()

    # -- cross-process payloads ----------------------------------------------

    def to_payload(self) -> dict[str, list]:
        """Plain-JSON form: lists of rows, safe to pickle or json-dump."""
        return {
            "counters": [
                [name, [list(pair) for pair in labels], counter.value]
                for (name, labels), counter in sorted(self._counters.items())
            ],
            "gauges": [
                [name, [list(pair) for pair in labels], gauge.value]
                for (name, labels), gauge in sorted(self._gauges.items())
            ],
            "histograms": [
                [
                    name,
                    [list(pair) for pair in labels],
                    list(hist.buckets),
                    list(hist.counts),
                    hist.total,
                    hist.count,
                ]
                for (name, labels), hist in sorted(self._histograms.items())
            ],
            "spans": [
                [
                    span.name,
                    [list(pair) for pair in span.labels],
                    span.ts_ns,
                    span.dur_ns,
                    span.pid,
                    span.tid,
                ]
                for span in self.spans
            ],
        }

    def merge_payload(self, payload: Mapping[str, list]) -> None:
        """Fold a worker payload in: sum counters/histograms, extend spans.

        Gauges keep the payload's value (last writer wins); the trial fabric
        merges chunk payloads in sweep order, which makes that deterministic.
        """
        for name, labels, value in payload.get("counters", []):
            key = (name, tuple(tuple(pair) for pair in labels))
            counter = self._counters.get(key)
            if counter is None:
                counter = self._counters[key] = Counter()
            counter.inc(value)
        for name, labels, value in payload.get("gauges", []):
            key = (name, tuple(tuple(pair) for pair in labels))
            gauge = self._gauges.get(key)
            if gauge is None:
                gauge = self._gauges[key] = Gauge()
            gauge.set(value)
        for name, labels, buckets, counts, total, count in payload.get("histograms", []):
            key = (name, tuple(tuple(pair) for pair in labels))
            hist = self._histograms.get(key)
            if hist is None:
                hist = self._histograms[key] = Histogram(buckets)
            if tuple(hist.buckets) != tuple(float(b) for b in buckets):
                raise ValueError(
                    f"histogram {key[0]!r} bucket mismatch on merge: "
                    f"{hist.buckets} vs {tuple(buckets)}"
                )
            for index, bucket_count in enumerate(counts):
                hist.counts[index] += bucket_count
            hist.total += total
            hist.count += count
        for name, labels, ts_ns, dur_ns, pid, tid in payload.get("spans", []):
            self.spans.append(
                SpanEvent(
                    name=name,
                    labels=tuple(tuple(pair) for pair in labels),
                    ts_ns=ts_ns,
                    dur_ns=dur_ns,
                    pid=pid,
                    tid=tid,
                )
            )

    @classmethod
    def from_payload(cls, payload: Mapping[str, list]) -> "MetricsRegistry":
        registry = cls()
        registry.merge_payload(payload)
        return registry

    # -- comparison ----------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Canonical comparable form (tests equate these across round-trips)."""
        return {
            "counters": {
                (name, labels): counter.value
                for (name, labels), counter in self._counters.items()
            },
            "gauges": {
                (name, labels): gauge.value
                for (name, labels), gauge in self._gauges.items()
            },
            "histograms": {
                (name, labels): (hist.buckets, tuple(hist.counts), hist.total, hist.count)
                for (name, labels), hist in self._histograms.items()
            },
            "spans": tuple(self.spans),
        }

    def counter_totals(self) -> dict[str, int | float]:
        """Counter values summed over labels, keyed by bare name."""
        totals: dict[str, int | float] = {}
        for name, _, value in self.counters():
            totals[name] = totals.get(name, 0) + value
        return totals
