"""Registry exporters: JSONL, Prometheus text, Chrome trace-event JSON.

Three formats, one source of truth (:class:`~repro.obs.metrics
.MetricsRegistry`):

* **JSONL** — one typed JSON object per line (``meta`` / ``counter`` /
  ``gauge`` / ``histogram`` / ``span``).  Lossless: :func:`read_jsonl`
  rebuilds a registry whose :meth:`~repro.obs.metrics.MetricsRegistry
  .snapshot` equals the original's (the round-trip test pins this).
* **Prometheus text** — the ``# TYPE`` + ``name{labels} value`` exposition
  format, for eyeballing or scraping a dumped file.  Metric names have
  ``.`` folded to ``_`` per Prometheus naming rules.
* **Chrome trace-event JSON** — ``{"traceEvents": [...]}`` with complete
  (``"X"``) events for spans and metadata (``"M"``) process/thread names,
  loadable directly in Perfetto (https://ui.perfetto.dev).  Timestamps are
  microseconds as the format requires.  :func:`validate_chrome_trace`
  checks the structural rules Perfetto's importer enforces; the exporter
  tests and the report CLI both run it.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any, Mapping

from .metrics import MetricsRegistry

__all__ = [
    "chrome_trace",
    "prometheus_text",
    "read_jsonl",
    "registry_to_jsonl",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]


# -- JSONL -------------------------------------------------------------------


def registry_to_jsonl(registry: MetricsRegistry) -> str:
    """Serialize a registry as JSONL text (one typed object per line)."""
    lines = [json.dumps({"type": "meta", "format": "repro.obs/v1"})]
    for name, labels, value in registry.counters():
        lines.append(
            json.dumps(
                {"type": "counter", "name": name, "labels": labels, "value": value}
            )
        )
    for name, labels, value in registry.gauges():
        lines.append(
            json.dumps(
                {"type": "gauge", "name": name, "labels": labels, "value": value}
            )
        )
    for name, labels, hist in registry.histograms():
        lines.append(
            json.dumps(
                {
                    "type": "histogram",
                    "name": name,
                    "labels": labels,
                    "buckets": list(hist.buckets),
                    "counts": list(hist.counts),
                    "total": hist.total,
                    "count": hist.count,
                }
            )
        )
    for event in registry.spans:
        lines.append(
            json.dumps(
                {
                    "type": "span",
                    "name": event.name,
                    "labels": dict(event.labels),
                    "ts_ns": event.ts_ns,
                    "dur_ns": event.dur_ns,
                    "pid": event.pid,
                    "tid": event.tid,
                }
            )
        )
    return "\n".join(lines) + "\n"


def write_jsonl(registry: MetricsRegistry, path: str | Path) -> Path:
    """Write the registry to ``path`` as JSONL; returns the path."""
    target = Path(path)
    target.write_text(registry_to_jsonl(registry))
    return target


def read_jsonl(path: str | Path) -> MetricsRegistry:
    """Rebuild a registry from a JSONL dump (inverse of :func:`write_jsonl`)."""
    registry = MetricsRegistry()
    for line_number, line in enumerate(Path(path).read_text().splitlines(), start=1):
        if not line.strip():
            continue
        row = json.loads(line)
        kind = row.get("type")
        if kind == "meta":
            continue
        if kind == "counter":
            registry.counter(row["name"], **row["labels"]).inc(row["value"])
        elif kind == "gauge":
            registry.gauge(row["name"], **row["labels"]).set(row["value"])
        elif kind == "histogram":
            hist = registry.histogram(row["name"], row["buckets"], **row["labels"])
            for index, count in enumerate(row["counts"]):
                hist.counts[index] += count
            hist.total += row["total"]
            hist.count += row["count"]
        elif kind == "span":
            registry.record_span(
                row["name"],
                row["ts_ns"],
                row["dur_ns"],
                row["labels"],
                pid=row["pid"],
                tid=row["tid"],
            )
        else:
            raise ValueError(f"{path}:{line_number}: unknown record type {kind!r}")
    return registry


# -- Prometheus text ---------------------------------------------------------

_PROM_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")


def _prom_name(name: str) -> str:
    sanitized = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not _PROM_NAME_OK.match(sanitized):
        sanitized = "_" + sanitized
    return sanitized


def _prom_escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _prom_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{_prom_name(key)}="{_prom_escape(str(value))}"'
        for key, value in sorted(labels.items())
    )
    return "{" + body + "}"


def prometheus_text(registry: MetricsRegistry) -> str:
    """Prometheus exposition-format dump of counters, gauges, histograms."""
    lines: list[str] = []
    typed: set[str] = set()

    def _type_line(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for name, labels, value in registry.counters():
        prom = _prom_name(name)
        _type_line(prom, "counter")
        lines.append(f"{prom}{_prom_labels(labels)} {value}")
    for name, labels, value in registry.gauges():
        prom = _prom_name(name)
        _type_line(prom, "gauge")
        lines.append(f"{prom}{_prom_labels(labels)} {value}")
    for name, labels, hist in registry.histograms():
        prom = _prom_name(name)
        _type_line(prom, "histogram")
        cumulative = 0
        for bound, count in zip(hist.buckets, hist.counts):
            cumulative += count
            bucket_labels = dict(labels)
            bucket_labels["le"] = repr(bound)
            lines.append(f"{prom}_bucket{_prom_labels(bucket_labels)} {cumulative}")
        inf_labels = dict(labels)
        inf_labels["le"] = "+Inf"
        lines.append(f"{prom}_bucket{_prom_labels(inf_labels)} {hist.count}")
        lines.append(f"{prom}_sum{_prom_labels(labels)} {hist.total}")
        lines.append(f"{prom}_count{_prom_labels(labels)} {hist.count}")
    return "\n".join(lines) + "\n"


# -- Chrome trace-event JSON (Perfetto) --------------------------------------


def chrome_trace(registry: MetricsRegistry) -> dict[str, Any]:
    """Registry spans as a Chrome trace-event object (Perfetto-loadable).

    Spans become complete (``"X"``) events with microsecond timestamps;
    each distinct pid gets a ``process_name`` metadata event so trial-fabric
    workers show up as named track groups.
    """
    events: list[dict[str, Any]] = []
    seen_pids: set[int] = set()
    seen_tids: set[tuple[int, int]] = set()
    for event in registry.spans:
        if event.pid not in seen_pids:
            seen_pids.add(event.pid)
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": event.pid,
                    "tid": 0,
                    "args": {"name": f"repro pid {event.pid}"},
                }
            )
        if (event.pid, event.tid) not in seen_tids:
            seen_tids.add((event.pid, event.tid))
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": event.pid,
                    "tid": event.tid,
                    "args": {"name": f"thread {event.tid}"},
                }
            )
        events.append(
            {
                "name": event.name,
                "cat": event.name.split(".", 1)[0],
                "ph": "X",
                "ts": event.ts_ns / 1_000.0,
                "dur": event.dur_ns / 1_000.0,
                "pid": event.pid,
                "tid": event.tid,
                "args": dict(event.labels),
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(registry: MetricsRegistry, path: str | Path) -> Path:
    """Write :func:`chrome_trace` JSON to ``path``; returns the path."""
    target = Path(path)
    target.write_text(json.dumps(chrome_trace(registry)))
    return target


def validate_chrome_trace(trace: Mapping[str, Any]) -> None:
    """Raise ``ValueError`` unless ``trace`` is structurally trace-event JSON.

    Checks the rules Perfetto's importer enforces on the JSON trace format:
    a ``traceEvents`` list; every event a dict with a string ``ph`` phase;
    complete (``"X"``) events carrying a string ``name``, numeric ``ts``,
    non-negative numeric ``dur``, and integer ``pid``/``tid``; metadata
    (``"M"``) events carrying a known name and an ``args`` dict.
    """
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace must carry a 'traceEvents' list")
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"traceEvents[{index}] is not an object")
        phase = event.get("ph")
        if not isinstance(phase, str) or not phase:
            raise ValueError(f"traceEvents[{index}] missing phase 'ph'")
        if phase == "X":
            if not isinstance(event.get("name"), str):
                raise ValueError(f"traceEvents[{index}] 'X' event missing name")
            for field in ("ts", "dur"):
                value = event.get(field)
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    raise ValueError(
                        f"traceEvents[{index}] 'X' event field {field!r} not numeric"
                    )
            if event["dur"] < 0:
                raise ValueError(f"traceEvents[{index}] negative duration")
            for field in ("pid", "tid"):
                if not isinstance(event.get(field), int):
                    raise ValueError(
                        f"traceEvents[{index}] 'X' event field {field!r} not an int"
                    )
        elif phase == "M":
            if event.get("name") not in ("process_name", "thread_name", "process_labels"):
                raise ValueError(f"traceEvents[{index}] unknown metadata name")
            if not isinstance(event.get("args"), dict):
                raise ValueError(f"traceEvents[{index}] metadata missing args")
        else:
            raise ValueError(f"traceEvents[{index}] unsupported phase {phase!r}")
