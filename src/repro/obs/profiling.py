"""Allocation profiling shared by ``repro.obs report`` and profile_hotpaths.

One ``tracemalloc`` pass over a callable, returned as structured rows so the
CLI table renderer and the ``--json`` path of ``scripts/profile_hotpaths.py``
consume the same data.  Kept separate from the metrics registry on purpose:
tracemalloc is a whole-interpreter switch with real overhead, so it never
rides along with the zero-overhead counter path - callers opt in per run.
"""

from __future__ import annotations

import tracemalloc
from typing import Any, Callable, TypeVar

__all__ = ["top_allocations"]

T = TypeVar("T")


def top_allocations(
    fn: Callable[[], T],
    *,
    top: int = 15,
    frames: int = 25,
    strip_prefix: str | None = None,
) -> tuple[T, list[dict[str, Any]]]:
    """Run ``fn`` under tracemalloc and return its result plus the top sites.

    Args:
        fn: zero-argument callable to profile (wrap arguments in a lambda).
        top: number of allocation sites to keep, largest first.
        frames: traceback depth recorded per allocation.
        strip_prefix: path prefix (usually the repo root) removed from
            locations so repo files render relative while stdlib/numpy
            frames stay absolute.

    Returns:
        ``(result, rows)`` where each row has ``kib`` (KiB allocated over
        the run), ``blocks`` and ``location`` (``file:line``).
    """
    tracemalloc.start(frames)
    try:
        result = fn()
        snapshot = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    rows: list[dict[str, Any]] = []
    for stat in snapshot.statistics("lineno")[:top]:
        frame = stat.traceback[0]
        location = f"{frame.filename}:{frame.lineno}"
        if strip_prefix:
            prefix = strip_prefix.rstrip("/") + "/"
            if location.startswith(prefix):
                location = location[len(prefix):]
        rows.append(
            {
                "kib": stat.size / 1024.0,
                "blocks": stat.count,
                "location": location,
            }
        )
    return result, rows
