"""The process-global telemetry switch: the ``OBS`` singleton.

Telemetry is off by default and must cost nothing measurable when off.
The enabled-guard idiom every instrumentation site follows::

    from repro.obs import OBS

    if OBS.enabled:
        OBS.registry.inc("sim.slots")

When disabled the whole site is one attribute load and a false branch —
no registry lookup, no label tuple, no allocation.  repro-lint rule RL011
enforces the idiom statically inside ``@hot_kernel`` bodies (the only
place a stray unguarded call could tax the per-slot path); everywhere
else it is convention, pinned by the overhead benchmark
(``benchmarks/bench_obs.py``).

``OBS.registry`` is always a live :class:`~repro.obs.metrics
.MetricsRegistry` (never ``None``), so guarded sites skip a null check;
:func:`enable` can swap in a per-run registry and :func:`telemetry` scopes
one to a ``with`` block.  Telemetry never consumes RNG and never mutates
simulation inputs — the parity tests pin runs bit-identical on vs. off.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from .metrics import MetricsRegistry

__all__ = [
    "OBS",
    "disable",
    "enable",
    "get_registry",
    "telemetry",
    "telemetry_enabled",
]


class _ObsState:
    """Mutable holder for the global switch; ``OBS`` is the one instance."""

    __slots__ = ("enabled", "registry")

    def __init__(self) -> None:
        self.enabled: bool = False
        self.registry: MetricsRegistry = MetricsRegistry()


#: The process-global telemetry state.  Hot paths read ``OBS.enabled`` only.
OBS = _ObsState()


def telemetry_enabled() -> bool:
    """Whether telemetry is currently recording."""
    return OBS.enabled


def get_registry() -> MetricsRegistry:
    """The registry instrumentation currently writes to."""
    return OBS.registry


def enable(registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Turn telemetry on, optionally swapping in a per-run registry.

    Returns the registry now receiving writes (a convenience for
    ``registry = enable()`` call sites).
    """
    if registry is not None:
        OBS.registry = registry
    OBS.enabled = True
    return OBS.registry


def disable() -> None:
    """Stop recording.  The registry keeps its contents for export."""
    OBS.enabled = False


@contextmanager
def telemetry(registry: MetricsRegistry | None = None) -> Iterator[MetricsRegistry]:
    """Scope telemetry to a ``with`` block; restores prior state on exit.

    >>> with telemetry() as reg:
    ...     run_experiment(...)
    >>> reg.counter_value("sim.slots")
    """
    previous_enabled = OBS.enabled
    previous_registry = OBS.registry
    active = enable(registry if registry is not None else MetricsRegistry())
    try:
        yield active
    finally:
        OBS.enabled = previous_enabled
        OBS.registry = previous_registry
