"""Ordered collections of links with the queries the paper's analysis needs.

A :class:`LinkSet` is an ordered, duplicate-free collection of :class:`Link`
objects supporting the vocabulary of Section 3: senders ``S(L)``, receivers
``R(L)``, duals, node degrees, and length statistics.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Iterable, Iterator, Sequence

from ..geometry import Node
from .link import Link

__all__ = ["LinkSet"]


class LinkSet:
    """An ordered set of directed links.

    Iteration order is insertion order; membership, senders, receivers and
    degree queries are O(1) per element.  The collection is immutable from the
    outside except through :meth:`add`; algorithms generally build new sets
    via :meth:`filtered` / :meth:`union` rather than mutating shared ones.
    """

    def __init__(self, links: Iterable[Link] = ()):
        self._links: list[Link] = []
        self._keys: set[tuple[int, int]] = set()
        self._degree: Counter[int] = Counter()
        self._nodes: dict[int, Node] = {}
        for link in links:
            self.add(link)

    # -- construction -----------------------------------------------------

    def add(self, link: Link) -> bool:
        """Add ``link`` if not already present; return ``True`` if added."""
        key = link.endpoint_ids
        if key in self._keys:
            return False
        self._keys.add(key)
        self._links.append(link)
        self._degree[link.sender.id] += 1
        self._degree[link.receiver.id] += 1
        self._nodes[link.sender.id] = link.sender
        self._nodes[link.receiver.id] = link.receiver
        return True

    def union(self, other: Iterable[Link]) -> "LinkSet":
        """A new set containing this set's links followed by ``other``'s."""
        result = LinkSet(self._links)
        for link in other:
            result.add(link)
        return result

    def filtered(self, predicate: Callable[[Link], bool]) -> "LinkSet":
        """A new set with only the links satisfying ``predicate``."""
        return LinkSet(link for link in self._links if predicate(link))

    def without(self, other: Iterable[Link]) -> "LinkSet":
        """A new set with the links of ``other`` removed."""
        removed = {link.endpoint_ids for link in other}
        return LinkSet(link for link in self._links if link.endpoint_ids not in removed)

    def duals(self) -> "LinkSet":
        """The dual set (every link reversed), in the same order."""
        return LinkSet(link.dual for link in self._links)

    # -- container protocol ----------------------------------------------

    def __len__(self) -> int:
        return len(self._links)

    def __iter__(self) -> Iterator[Link]:
        return iter(self._links)

    def __contains__(self, link: Link) -> bool:
        return link.endpoint_ids in self._keys

    def __getitem__(self, index: int) -> Link:
        return self._links[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LinkSet):
            return NotImplemented
        return self._keys == other._keys

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LinkSet({len(self._links)} links)"

    # -- queries -----------------------------------------------------------

    @property
    def links(self) -> Sequence[Link]:
        """The links in insertion order (read-only view)."""
        return tuple(self._links)

    def senders(self) -> set[Node]:
        """The set ``S(L)`` of sender nodes."""
        return {link.sender for link in self._links}

    def receivers(self) -> set[Node]:
        """The set ``R(L)`` of receiver nodes."""
        return {link.receiver for link in self._links}

    def nodes(self) -> set[Node]:
        """All nodes incident to some link."""
        return set(self._nodes.values())

    def node_ids(self) -> set[int]:
        """Ids of all incident nodes."""
        return set(self._nodes.keys())

    def degree(self, node: Node | int) -> int:
        """Number of links (in either direction) incident on ``node``."""
        node_id = node if isinstance(node, int) else node.id
        return self._degree.get(node_id, 0)

    def degrees(self) -> dict[int, int]:
        """Mapping of node id to incident-link count."""
        return dict(self._degree)

    def max_degree(self) -> int:
        """Largest node degree (0 for an empty set)."""
        return max(self._degree.values(), default=0)

    def incident_links(self, node: Node | int) -> "LinkSet":
        """All links having ``node`` as sender or receiver."""
        node_id = node if isinstance(node, int) else node.id
        return LinkSet(
            link
            for link in self._links
            if link.sender.id == node_id or link.receiver.id == node_id
        )

    def outgoing(self, node: Node | int) -> "LinkSet":
        """All links with ``node`` as sender."""
        node_id = node if isinstance(node, int) else node.id
        return LinkSet(link for link in self._links if link.sender.id == node_id)

    def incoming(self, node: Node | int) -> "LinkSet":
        """All links with ``node`` as receiver."""
        node_id = node if isinstance(node, int) else node.id
        return LinkSet(link for link in self._links if link.receiver.id == node_id)

    def induced_by_nodes(self, nodes: Iterable[Node | int]) -> "LinkSet":
        """Links whose both endpoints lie in ``nodes``."""
        ids = {node if isinstance(node, int) else node.id for node in nodes}
        return LinkSet(
            link
            for link in self._links
            if link.sender.id in ids and link.receiver.id in ids
        )

    # -- length statistics --------------------------------------------------

    def lengths(self) -> list[float]:
        """List of link lengths in insertion order."""
        return [link.length for link in self._links]

    def min_length(self) -> float:
        """Shortest link length.

        Raises:
            ValueError: for an empty set.
        """
        if not self._links:
            raise ValueError("empty link set has no minimum length")
        return min(self.lengths())

    def max_length(self) -> float:
        """Longest link length.

        Raises:
            ValueError: for an empty set.
        """
        if not self._links:
            raise ValueError("empty link set has no maximum length")
        return max(self.lengths())

    def longer_than(self, threshold: float) -> "LinkSet":
        """Links of length at least ``threshold`` (the paper's ``L(d)``)."""
        return self.filtered(lambda link: link.length >= threshold)

    def sorted_by_length(self, descending: bool = False) -> "LinkSet":
        """A new set with links ordered by length (ties broken by node ids)."""
        ordered = sorted(
            self._links, key=lambda link: (link.length, link.endpoint_ids), reverse=descending
        )
        return LinkSet(ordered)
