"""Length classes.

A *length class* is a set of links whose lengths differ by at most a factor of
two (Section 3).  The ``Init`` algorithm processes one length class per round
and the analysis of ``Distr-Cap`` relies on the fact that links formed in the
same round share a class.
"""

from __future__ import annotations

import math
from typing import Iterable

from .link import Link
from .linkset import LinkSet

__all__ = ["length_class_index", "partition_by_length_class", "num_length_classes"]


def length_class_index(length: float, min_length: float = 1.0) -> int:
    """Index of the length class containing ``length``.

    Class ``k`` covers lengths in ``[min_length * 2**k, min_length * 2**(k+1))``;
    lengths exactly equal to ``min_length`` fall in class 0.

    Raises:
        ValueError: if ``length`` is smaller than ``min_length`` or either
            argument is non-positive.
    """
    if min_length <= 0:
        raise ValueError("min_length must be positive")
    if length <= 0:
        raise ValueError("length must be positive")
    if length < min_length * (1.0 - 1e-12):
        raise ValueError(f"length {length} below the minimum length {min_length}")
    ratio = max(length / min_length, 1.0)
    index = int(math.floor(math.log2(ratio) + 1e-12))
    return max(index, 0)


def partition_by_length_class(
    links: Iterable[Link], min_length: float = 1.0
) -> dict[int, LinkSet]:
    """Partition links into length classes keyed by class index."""
    classes: dict[int, LinkSet] = {}
    for link in links:
        idx = length_class_index(link.length, min_length)
        classes.setdefault(idx, LinkSet()).add(link)
    return classes


def num_length_classes(delta: float) -> int:
    """Number of length classes needed to cover lengths in ``[1, delta]``."""
    if delta < 1:
        raise ValueError("delta must be at least 1")
    return int(math.floor(math.log2(delta))) + 1 if delta > 1 else 1
