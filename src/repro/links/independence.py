"""q-independence of link pairs (Appendix A of the paper).

Two links ``l = (x, y)`` and ``l' = (x', y')`` are *q-independent* when

    d(x, y') * d(y, x') >= q**2 * d(x, y) * d(x', y')

The appendix shows that the sparse tree subset ``T(M)`` can be partitioned
into a constant number of C-independent sets, which is the bridge from
sparsity to small affectance under mean power (Lemma 14).  This module
provides the pairwise predicate and a greedy partition routine mirroring the
coloring argument of Lemma 23.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .link import Link
from .linkset import LinkSet

__all__ = ["are_q_independent", "is_q_independent_set", "partition_into_independent_sets"]


def are_q_independent(first: Link, second: Link, q: float) -> bool:
    """Whether the two links satisfy the q-independence inequality.

    Links sharing a node are never q-independent for ``q > 0`` because one of
    the cross distances is zero.
    """
    if q <= 0:
        raise ValueError("q must be positive")
    cross = first.sender.distance_to(second.receiver) * first.receiver.distance_to(second.sender)
    own = first.length * second.length
    return cross >= q * q * own


def is_q_independent_set(links: Iterable[Link], q: float) -> bool:
    """Whether every pair of distinct links in the set is q-independent."""
    link_list = list(links)
    for i, first in enumerate(link_list):
        for second in link_list[i + 1 :]:
            if not are_q_independent(first, second, q):
                return False
    return True


def partition_into_independent_sets(links: LinkSet | Sequence[Link], q: float) -> list[LinkSet]:
    """Greedy partition of a link set into q-independent subsets.

    Follows the coloring argument of Lemma 23: process links in ascending
    length order and place each into the first class where it is q-independent
    of every existing member, opening a new class when none fits.  For sparse
    inputs the number of classes is O(1); the caller can check this via
    ``len(result)``.
    """
    ordered = sorted(links, key=lambda link: (link.length, link.endpoint_ids))
    classes: list[list[Link]] = []
    for link in ordered:
        placed = False
        for cls in classes:
            if all(are_q_independent(link, member, q) for member in cls):
                cls.append(link)
                placed = True
                break
        if not placed:
            classes.append([link])
    return [LinkSet(cls) for cls in classes]
