"""Sparsity of link sets (Definition 8 of the paper).

A link set ``L`` is *psi-sparse* if for every closed ball ``B`` in the plane,
the number of links of length at least ``8 * rad(B)`` having at least one
endpoint in ``B`` is at most ``psi``.

Measuring the exact psi over *all* balls is unnecessary: the supremum is
attained (up to a constant factor) by balls centered at link endpoints with
radii taken from the set ``{length / 8 : length a link length}``.  The
estimator below enumerates exactly those candidate balls, which mirrors the
"polynomially many relevant balls" remark preceding Theorem 11 in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..geometry import Node
from .link import Link
from .linkset import LinkSet

__all__ = ["SparsityReport", "sparsity", "is_sparse", "sparsity_profile"]


@dataclass(frozen=True)
class SparsityReport:
    """Result of a sparsity measurement.

    Attributes:
        psi: the measured sparsity (maximum count over candidate balls).
        witness_center: id of the node at the center of the maximizing ball.
        witness_radius: radius of the maximizing ball.
        balls_examined: number of candidate balls enumerated.
    """

    psi: int
    witness_center: int | None
    witness_radius: float
    balls_examined: int


def _endpoint_arrays(links: Sequence[Link]) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    senders = np.array([[l.sender.x, l.sender.y] for l in links], dtype=float)
    receivers = np.array([[l.receiver.x, l.receiver.y] for l in links], dtype=float)
    lengths = np.array([l.length for l in links], dtype=float)
    return senders, receivers, lengths


def sparsity(links: Iterable[Link], length_factor: float = 8.0) -> SparsityReport:
    """Measure the sparsity psi of a link set.

    Args:
        links: the link set to measure.
        length_factor: the ``8`` in Definition 8; exposed for sensitivity
            studies.

    Returns:
        A :class:`SparsityReport`; ``psi`` is 0 for an empty set.
    """
    link_list = list(links)
    if not link_list:
        return SparsityReport(psi=0, witness_center=None, witness_radius=0.0, balls_examined=0)
    if length_factor <= 0:
        raise ValueError("length_factor must be positive")

    senders, receivers, lengths = _endpoint_arrays(link_list)
    # Candidate radii: one per distinct link length (ball radius = length / factor).
    radii = np.unique(lengths) / length_factor
    # Candidate centers: all link endpoints.
    centers = np.concatenate([senders, receivers])
    center_ids = [l.sender.id for l in link_list] + [l.receiver.id for l in link_list]

    best = 0
    best_center: int | None = None
    best_radius = 0.0
    balls = 0
    for radius in radii:
        threshold = radius * length_factor
        eligible = lengths >= threshold - 1e-12
        if not eligible.any():
            continue
        elig_s = senders[eligible]
        elig_r = receivers[eligible]
        for c_index in range(centers.shape[0]):
            balls += 1
            center = centers[c_index]
            ds = np.hypot(elig_s[:, 0] - center[0], elig_s[:, 1] - center[1])
            dr = np.hypot(elig_r[:, 0] - center[0], elig_r[:, 1] - center[1])
            count = int(np.count_nonzero((ds <= radius + 1e-12) | (dr <= radius + 1e-12)))
            if count > best:
                best = count
                best_center = center_ids[c_index]
                best_radius = float(radius)
    return SparsityReport(
        psi=best, witness_center=best_center, witness_radius=best_radius, balls_examined=balls
    )


def is_sparse(links: Iterable[Link], psi: int, length_factor: float = 8.0) -> bool:
    """Whether the link set is ``psi``-sparse."""
    return sparsity(links, length_factor).psi <= psi


def sparsity_profile(
    links: LinkSet, radii: Sequence[float], length_factor: float = 8.0
) -> dict[float, int]:
    """Maximum in-ball count of long links for each radius in ``radii``.

    Unlike :func:`sparsity`, which searches over all radii, this reports the
    per-radius maxima, which is useful for plotting how the sparsity bound is
    approached.
    """
    link_list = list(links)
    result: dict[float, int] = {}
    if not link_list:
        return {float(r): 0 for r in radii}
    senders, receivers, lengths = _endpoint_arrays(link_list)
    centers = np.concatenate([senders, receivers])
    for radius in radii:
        if radius <= 0:
            raise ValueError("radii must be positive")
        threshold = radius * length_factor
        eligible = lengths >= threshold - 1e-12
        best = 0
        if eligible.any():
            elig_s = senders[eligible]
            elig_r = receivers[eligible]
            for c_index in range(centers.shape[0]):
                center = centers[c_index]
                ds = np.hypot(elig_s[:, 0] - center[0], elig_s[:, 1] - center[1])
                dr = np.hypot(elig_r[:, 0] - center[0], elig_r[:, 1] - center[1])
                count = int(np.count_nonzero((ds <= radius + 1e-12) | (dr <= radius + 1e-12)))
                best = max(best, count)
        result[float(radius)] = best
    return result
