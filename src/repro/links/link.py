"""Directed communication links.

A link is a directed sender-to-receiver pair of nodes (Section 3 of the
paper).  The *dual* of a link reverses its direction; bi-trees are built from
link/dual pairs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..geometry import Node

__all__ = ["Link"]


@dataclass(frozen=True, order=True)
class Link:
    """A directed wireless link from ``sender`` to ``receiver``."""

    sender: Node
    receiver: Node

    def __post_init__(self) -> None:
        if self.sender.id == self.receiver.id:
            raise ValueError(f"link endpoints must be distinct nodes, got id {self.sender.id}")

    @property
    def length(self) -> float:
        """Euclidean length of the link, ``d(sender, receiver)``."""
        return self.sender.distance_to(self.receiver)

    @property
    def dual(self) -> "Link":
        """The link in the opposite direction (receiver -> sender)."""
        return Link(sender=self.receiver, receiver=self.sender)

    @property
    def endpoints(self) -> tuple[Node, Node]:
        """The (sender, receiver) node pair."""
        return (self.sender, self.receiver)

    @property
    def endpoint_ids(self) -> tuple[int, int]:
        """The (sender id, receiver id) pair."""
        return (self.sender.id, self.receiver.id)

    def shares_node_with(self, other: "Link") -> bool:
        """Whether this link and ``other`` have a node in common."""
        ids = {self.sender.id, self.receiver.id}
        return other.sender.id in ids or other.receiver.id in ids

    def is_dual_of(self, other: "Link") -> bool:
        """Whether this link is exactly the reverse of ``other``."""
        return self.sender.id == other.receiver.id and self.receiver.id == other.sender.id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Link({self.sender.id}->{self.receiver.id}, len={self.length:.3f})"
