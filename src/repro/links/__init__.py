"""Link algebra: directed links, link sets, length classes, sparsity."""

from .independence import (
    are_q_independent,
    is_q_independent_set,
    partition_into_independent_sets,
)
from .length_classes import length_class_index, num_length_classes, partition_by_length_class
from .link import Link
from .linkset import LinkSet
from .sparsity import SparsityReport, is_sparse, sparsity, sparsity_profile

__all__ = [
    "Link",
    "LinkSet",
    "length_class_index",
    "num_length_classes",
    "partition_by_length_class",
    "SparsityReport",
    "sparsity",
    "sparsity_profile",
    "is_sparse",
    "are_q_independent",
    "is_q_independent_set",
    "partition_into_independent_sets",
]
