"""Lock-step slotted simulator.

The simulator advances global slotted time.  In every slot it polls each
agent for an action, feeds the resulting transmissions through the SINR
channel, and delivers to every listening agent whatever (if anything) that
agent decoded.  This is exactly the execution model of the paper: synchronized
clocks, slotted time, a single shared channel, no carrier sensing.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from ..exceptions import ProtocolError
from ..sinr import MAX_CACHED_CHANNEL_NODES, CachedChannel, Channel, Transmission
from .agent import NodeAgent
from .trace import ExecutionTrace, SlotRecord

__all__ = ["Simulator", "spawn_agent_rngs"]


def spawn_agent_rngs(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Create ``count`` independent child generators from a parent generator."""
    if count < 0:
        raise ValueError("count must be non-negative")
    seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(seed)) for seed in seeds]


class Simulator:
    """Runs a collection of agents over a shared SINR channel.

    Args:
        agents: the per-node protocol agents.
        channel: the SINR channel instance.
        trace: optional pre-existing trace to append to.
    """

    def __init__(
        self,
        agents: Sequence[NodeAgent],
        channel: Channel,
        trace: ExecutionTrace | None = None,
    ):
        ids = [agent.node_id for agent in agents]
        if len(ids) != len(set(ids)):
            raise ProtocolError("duplicate node ids among agents")
        self.agents: list[NodeAgent] = list(agents)
        # The agent set is fixed for the simulator's lifetime, so a plain
        # channel is upgraded to one with cached node-to-node distances
        # (bounded: the cache holds an O(n^2) matrix); subclassed channels
        # are left untouched.
        if type(channel) is Channel and len(self.agents) <= MAX_CACHED_CHANNEL_NODES:
            channel = CachedChannel(channel.params, [agent.node for agent in self.agents])
        self.channel = channel
        self.trace = trace if trace is not None else ExecutionTrace()
        self._slot = 0

    @property
    def current_slot(self) -> int:
        """Index of the next slot to execute."""
        return self._slot

    def step(self, label: str = "") -> SlotRecord:
        """Execute one slot and return its record."""
        transmissions: list[Transmission] = []
        transmitter_ids: list[int] = []
        listeners = []
        for agent in self.agents:
            action = agent.act(self._slot)
            if action is None:
                listeners.append(agent.node)
            else:
                if action.sender.id != agent.node_id:
                    raise ProtocolError(
                        f"agent {agent.node_id} attempted to transmit as node {action.sender.id}"
                    )
                transmissions.append(action)
                transmitter_ids.append(agent.node_id)

        receptions = self.channel.resolve(transmissions, listeners)
        for agent in self.agents:
            agent.observe(self._slot, receptions.get(agent.node_id))

        record = SlotRecord(
            slot=self._slot,
            transmitters=tuple(transmitter_ids),
            receptions={listener: rec.sender.id for listener, rec in receptions.items()},
            label=label,
        )
        self.trace.record(record)
        self._slot += 1
        return record

    def run(self, slots: int, label: str = "") -> ExecutionTrace:
        """Execute a fixed number of slots."""
        if slots < 0:
            raise ValueError("slots must be non-negative")
        for _ in range(slots):
            self.step(label)
        return self.trace

    def run_until(
        self,
        predicate: Callable[["Simulator"], bool],
        max_slots: int,
        label: str = "",
    ) -> ExecutionTrace:
        """Execute slots until ``predicate(self)`` holds or ``max_slots`` elapse.

        The predicate is evaluated before each slot; if it is already true no
        slot is executed.

        Raises:
            ProtocolError: if the slot budget is exhausted without the
                predicate becoming true.
        """
        executed = 0
        while not predicate(self):
            if executed >= max_slots:
                raise ProtocolError(
                    f"predicate not satisfied within {max_slots} slots (label={label!r})"
                )
            self.step(label)
            executed += 1
        return self.trace

    def all_done(self) -> bool:
        """Whether every agent reports completion."""
        return all(agent.is_done() for agent in self.agents)

    def agents_by_id(self) -> dict[int, NodeAgent]:
        """Mapping from node id to agent."""
        return {agent.node_id: agent for agent in self.agents}
