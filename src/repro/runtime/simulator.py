"""Lock-step slotted simulator.

The simulator advances global slotted time.  In every slot it polls each
agent for an action, feeds the resulting transmissions through the SINR
channel, and delivers to every listening agent whatever (if anything) that
agent decoded.  This is exactly the execution model of the paper: synchronized
clocks, slotted time, a single shared channel, no carrier sensing.

Two slot engines implement that contract:

* ``engine="batch"`` (default) - agents are polled through
  :meth:`~repro.runtime.agent.NodeAgent.act_batch`, transmitter/listener
  indices and powers are collected into arrays, and the channel is resolved
  through :meth:`~repro.sinr.channel.CachedChannel.resolve_indices` in one
  vectorized pass that gathers its attenuation/fade blocks from the
  channel's backing :class:`~repro.state.NetworkState`;
  :class:`~repro.sinr.Reception` objects are built only for the listeners
  that decode.  Results are bit-for-bit identical to the seed engine (the
  decode arithmetic is shared and agents consume the same randomness either
  way).
* ``engine="legacy"`` - the seed per-object path (``act`` returning
  :class:`Transmission`, ``Channel.resolve`` over node objects), kept as the
  parity oracle and benchmark baseline.

The ``trace_level`` knob selects the trace backend when no trace is passed:
``"records"`` (seed :class:`ExecutionTrace`), ``"columnar"`` (flat arrays,
records materialized on demand) or ``"counts"`` (columnar without per-slot
reception detail).
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from ..exceptions import ProtocolError
from ..obs.runtime import OBS
from ..obs.spans import span
from ..sinr import MAX_CACHED_CHANNEL_NODES, CachedChannel, Channel, Reception, Transmission
from ..sinr.channel import ensure_positive_powers
from ..state import DecodeWorkspace
from .agent import NodeAgent
from .trace import ColumnarTrace, ExecutionTrace, SlotRecord

__all__ = ["Simulator", "spawn_agent_rngs"]


def spawn_agent_rngs(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Create ``count`` independent child generators from a parent generator."""
    if count < 0:
        raise ValueError("count must be non-negative")
    seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(seed)) for seed in seeds]


_TRACE_LEVELS = ("records", "columnar", "counts")


class Simulator:
    """Runs a collection of agents over a shared SINR channel.

    Args:
        agents: the per-node protocol agents.
        channel: the SINR channel instance.
        trace: optional pre-existing trace to append to (overrides
            ``trace_level``).
        trace_level: trace backend to create when ``trace`` is ``None``:
            ``"records"``, ``"columnar"`` or ``"counts"``.
        engine: ``"batch"`` (vectorized slot engine) or ``"legacy"`` (seed
            per-object path).
    """

    def __init__(
        self,
        agents: Sequence[NodeAgent],
        channel: Channel,
        trace: ExecutionTrace | None = None,
        *,
        trace_level: str = "records",
        engine: str = "batch",
    ):
        ids = [agent.node_id for agent in agents]
        if len(ids) != len(set(ids)):
            raise ProtocolError("duplicate node ids among agents")
        if engine not in ("batch", "legacy"):
            raise ValueError(f"unknown engine {engine!r}")
        if trace_level not in _TRACE_LEVELS:
            raise ValueError(f"unknown trace_level {trace_level!r}, expected one of {_TRACE_LEVELS}")
        self.agents: list[NodeAgent] = list(agents)
        # The agent set is fixed for the simulator's lifetime, so a plain
        # channel is upgraded to one viewing a NetworkState over the agents'
        # nodes - the store that owns the O(n^2) distance/attenuation
        # matrices every slot's decode gathers from (bounded by
        # MAX_CACHED_CHANNEL_NODES); subclassed channels are left untouched.
        # Under store="tiled" the upgrade is unconditional: the tiled state
        # is O(n), so there is no node-count ceiling to respect - this is
        # the init path (NetSimulator included, via inheritance) that lets
        # n >= 50k runs keep the batch decode engine.
        if type(channel) is Channel and (
            len(self.agents) <= MAX_CACHED_CHANNEL_NODES or channel.params.store == "tiled"
        ):
            channel = CachedChannel(channel.params, [agent.node for agent in self.agents])
        self.channel = channel
        if trace is None:
            if trace_level == "records":
                trace = ExecutionTrace()
            else:
                trace = ColumnarTrace(reception_detail=(trace_level == "columnar"))
        self.trace = trace
        self._engine = engine
        self._slot = 0
        self._node_ids: list[int] = ids
        self._pos_by_id: dict[int, int] = {node_id: i for i, node_id in enumerate(ids)}
        # Hot-loop hoists: the agent set is fixed for the simulator's
        # lifetime, so bound methods and nodes are captured once instead of
        # being looked up per agent per slot.
        self._nodes = [agent.node for agent in self.agents]
        self._act_batch = [agent.act_batch for agent in self.agents]
        self._observe = [agent.observe for agent in self.agents]
        self._listening = np.empty(len(self.agents), dtype=bool)
        # Index of each agent's node in the channel's distance cache, when the
        # channel is exactly a CachedChannel covering every agent (a subclass
        # may override `resolve`, so it must keep going through the object
        # path).
        self._cache_idx: np.ndarray | None = None
        self._full_universe = False
        # Scratch arena for the batch decode: every slot's gathered blocks,
        # received-power matrix and per-listener vectors live in these
        # reused buffers (results are consumed within the slot, so the
        # view-until-next-decode contract holds by construction).
        self._workspace = DecodeWorkspace() if engine == "batch" else None
        if engine == "batch" and type(self.channel) is CachedChannel:
            try:
                self._cache_idx = np.array(
                    [self.channel.cache.index_of_id(node_id) for node_id in ids], dtype=np.intp
                )
            except KeyError:
                self._cache_idx = None
            else:
                # Agent position == cache index (the simulator built the
                # channel itself, or an identical universe was passed): the
                # decode can run against all columns with a cheap row gather
                # and mask transmitters afterwards.
                self._full_universe = len(self.channel.cache) == len(ids) and bool(
                    np.array_equal(self._cache_idx, np.arange(len(ids)))
                )

    @property
    def current_slot(self) -> int:
        """Index of the next slot to execute."""
        return self._slot

    def _resolve_objects(
        self, transmissions: list[Transmission], listeners: list, slot: int
    ) -> dict[int, Reception]:
        """Object-path channel resolution, forwarding the slot when needed.

        The slot index is passed only when the channel's parameters carry a
        *stochastic* gain model (slot-dependent fading); custom channels that
        override ``resolve`` with the classic two-argument signature keep
        working unchanged under the deterministic model (including an
        explicit ``DeterministicPathLoss``).
        """
        if self.channel.params.effective_gain_model is not None:
            return self.channel.resolve(transmissions, listeners, slot)
        return self.channel.resolve(transmissions, listeners)

    def step(self, label: str = "") -> SlotRecord | None:
        """Execute one slot.

        Returns the slot's :class:`SlotRecord` when the trace backend stores
        records, ``None`` under a columnar trace (which does not materialize
        per-slot objects).
        """
        if self._engine == "legacy":
            return self._step_legacy(label)
        return self._step_batch(label)

    # -- batch engine --------------------------------------------------------
    #
    # The batch step is split into three seams - poll, decode, deliver - so
    # that alternative engines (the fault-injected message-passing runtime in
    # ``repro.netsim``) can reuse the exact decode arithmetic while changing
    # who gets polled and which decoded messages actually arrive.  Composed
    # unchanged, the seams are bit-identical to the original monolithic step.

    def _poll_batch(self, slot: int) -> tuple[list[int], list[float], list[Any]]:
        """Poll every agent for the slot; fills ``self._listening`` in place."""
        tx_pos: list[int] = []
        powers: list[float] = []
        messages: list[Any] = []
        listening = self._listening
        listening[:] = True
        for i, act_batch in enumerate(self._act_batch):
            action = act_batch(slot)
            if action is not None:
                tx_pos.append(i)
                powers.append(action[0])
                messages.append(action[1])
                listening[i] = False
        return tx_pos, powers, messages

    def _decode_batch(
        self,
        slot: int,
        tx_pos: list[int],
        powers: list[float],
        messages: list[Any],
    ) -> tuple[list[Reception | None], list[tuple[int, int]]]:
        """Resolve the slot's transmissions through the SINR channel.

        Returns per-agent-position receptions plus the (listener id, sender
        id) pairs in trace order.
        """
        node_ids = self._node_ids
        nodes = self._nodes
        n = len(nodes)
        listening = self._listening

        receptions: list[Reception | None] = [None] * n
        pairs: list[tuple[int, int]] = []
        if tx_pos:
            # Validate before branching so a non-positive power raises even
            # in slots with no listeners, exactly like the legacy engine
            # (where Transmission.__post_init__ runs for every action).
            power_arr = np.array(powers, dtype=float)
            ensure_positive_powers(power_arr)
        if tx_pos and len(tx_pos) < n:
            if self._full_universe:
                tx_arr = np.array(tx_pos, dtype=np.intp)
                best, sinr, ok = self.channel.resolve_indices_full(
                    tx_arr, power_arr, slot=slot, workspace=self._workspace
                )
                # Half-duplex: transmitter columns never decode.
                for pos in np.nonzero(ok & listening)[0].tolist():
                    b = int(best[pos])
                    src = tx_pos[b]
                    receptions[pos] = Reception(
                        sender=nodes[src], message=messages[b], sinr=float(sinr[pos])
                    )
                    pairs.append((node_ids[pos], node_ids[src]))
            elif self._cache_idx is not None:
                tx_arr = np.array(tx_pos, dtype=np.intp)
                rx_arr = np.nonzero(listening)[0]
                best, sinr, ok = self.channel.resolve_indices(
                    self._cache_idx[tx_arr],
                    self._cache_idx[rx_arr],
                    power_arr,
                    slot=slot,
                    workspace=self._workspace,
                )
                for j in np.nonzero(ok)[0].tolist():
                    b = int(best[j])
                    src = tx_pos[b]
                    pos = int(rx_arr[j])
                    receptions[pos] = Reception(
                        sender=nodes[src], message=messages[b], sinr=float(sinr[j])
                    )
                    pairs.append((node_ids[pos], node_ids[src]))
            else:
                # Custom channel (or agents outside the cache): go through the
                # node-object protocol so overridden `resolve` semantics hold.
                transmissions = [
                    Transmission(sender=nodes[i], power=power, message=message)
                    for i, power, message in zip(tx_pos, powers, messages)
                ]
                listeners = [nodes[i] for i in np.nonzero(listening)[0].tolist()]
                resolved = self._resolve_objects(transmissions, listeners, slot)
                for node_id, reception in resolved.items():
                    pos = self._pos_by_id[node_id]
                    receptions[pos] = reception
                    pairs.append((node_id, reception.sender.id))
        return receptions, pairs

    def _deliver_batch(self, slot: int, receptions: list[Reception | None]) -> None:
        """Deliver the slot outcome to every agent, in agent order."""
        for observe, reception in zip(self._observe, receptions):
            observe(slot, reception)

    def _step_batch(self, label: str) -> SlotRecord | None:
        slot = self._slot
        tx_pos, powers, messages = self._poll_batch(slot)
        receptions, pairs = self._decode_batch(slot, tx_pos, powers, messages)
        self._deliver_batch(slot, receptions)
        record = self.trace.append_slot(
            slot, [self._node_ids[i] for i in tx_pos], pairs, label
        )
        if OBS.enabled:
            registry = OBS.registry
            registry.inc("sim.slots")
            if tx_pos:
                registry.inc("sim.transmissions", len(tx_pos))
            if pairs:
                registry.inc("sim.receptions", len(pairs))
        self._slot += 1
        return record

    # -- legacy engine (seed path, parity oracle) ----------------------------

    def _step_legacy(self, label: str) -> SlotRecord | None:
        transmissions: list[Transmission] = []
        transmitter_ids: list[int] = []
        listeners = []
        for agent in self.agents:
            action = agent.act(self._slot)
            if action is None:
                listeners.append(agent.node)
            else:
                if action.sender.id != agent.node_id:
                    raise ProtocolError(
                        f"agent {agent.node_id} attempted to transmit as node {action.sender.id}"
                    )
                transmissions.append(action)
                transmitter_ids.append(agent.node_id)

        receptions = self._resolve_objects(transmissions, listeners, self._slot)
        for agent in self.agents:
            agent.observe(self._slot, receptions.get(agent.node_id))

        record = self.trace.append_slot(
            self._slot,
            transmitter_ids,
            [(listener, rec.sender.id) for listener, rec in receptions.items()],
            label,
        )
        if OBS.enabled:
            registry = OBS.registry
            registry.inc("sim.slots")
            if transmitter_ids:
                registry.inc("sim.transmissions", len(transmitter_ids))
            if receptions:
                registry.inc("sim.receptions", len(receptions))
        self._slot += 1
        return record

    def run(self, slots: int, label: str = "") -> ExecutionTrace:
        """Execute a fixed number of slots."""
        if slots < 0:
            raise ValueError("slots must be non-negative")
        with span("sim.run", slots=slots, label=label, engine=self._engine):
            for _ in range(slots):
                self.step(label)
        return self.trace

    def run_until(
        self,
        predicate: Callable[["Simulator"], bool],
        max_slots: int,
        label: str = "",
    ) -> ExecutionTrace:
        """Execute slots until ``predicate(self)`` holds or ``max_slots`` elapse.

        The predicate is evaluated before each slot; if it is already true no
        slot is executed.

        Raises:
            ProtocolError: if the slot budget is exhausted without the
                predicate becoming true.
        """
        executed = 0
        with span("sim.run_until", max_slots=max_slots, label=label):
            while not predicate(self):
                if executed >= max_slots:
                    raise ProtocolError(
                        f"predicate not satisfied within {max_slots} slots (label={label!r})"
                    )
                self.step(label)
                executed += 1
        return self.trace

    def all_done(self) -> bool:
        """Whether every agent reports completion."""
        return all(agent.is_done() for agent in self.agents)

    def agents_by_id(self) -> dict[int, NodeAgent]:
        """Mapping from node id to agent."""
        return {agent.node_id: agent for agent in self.agents}
