"""Message types exchanged over the wireless channel.

The paper distinguishes two message roles (Section 5):

* a *broadcast* is exploratory, addressed to nobody in particular, and carries
  only the sender's id and location;
* an *acknowledgment* answers a previous broadcast and carries both the
  acknowledger's identity and the id of the original broadcaster, so receivers
  can tell whether an acknowledgment was meant for them.

Data messages are used by the latency simulations (convergecast / broadcast on
the finished tree).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..geometry import Node

__all__ = ["BroadcastMessage", "AckMessage", "DataMessage"]


@dataclass(frozen=True)
class BroadcastMessage:
    """Exploratory hello carrying the sender's identity and position."""

    sender: Node
    round_index: int = 0

    @property
    def sender_id(self) -> int:
        return self.sender.id


@dataclass(frozen=True)
class AckMessage:
    """Acknowledgment of a previous broadcast.

    Attributes:
        sender: the acknowledging node (the would-be parent / receiver).
        target_id: id of the node whose broadcast is being acknowledged.
        round_index: the protocol round in which the exchange happened.
        slot_pair: index of the slot-pair within the round (used as the link's
            schedule time stamp by ``Init``).
    """

    sender: Node
    target_id: int
    round_index: int = 0
    slot_pair: int = 0

    @property
    def sender_id(self) -> int:
        return self.sender.id


@dataclass(frozen=True)
class DataMessage:
    """Application payload routed over an established tree."""

    sender: Node
    payload: Any = None
    destination_id: int | None = None
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def sender_id(self) -> int:
        return self.sender.id
