"""Per-node agents.

Every distributed algorithm in the library is written as a subclass of
:class:`NodeAgent`: an object holding only the node's local state, deciding at
each slot whether to transmit (and what and at which power) or to listen, and
updating its state from whatever the channel delivers.  Agents never see
global state; the simulator is the only component that touches the channel.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

import numpy as np

from ..exceptions import ProtocolError
from ..geometry import Node
from ..sinr import Reception, Transmission

__all__ = ["NodeAgent"]


class NodeAgent(ABC):
    """Base class for the local protocol state machine of one node.

    Args:
        node: the wireless node this agent controls.
        rng: the agent's private source of randomness.  Each agent gets its
            own generator so runs are reproducible regardless of the order in
            which the simulator polls agents.
    """

    def __init__(self, node: Node, rng: np.random.Generator):
        self.node = node
        self.rng = rng

    @property
    def node_id(self) -> int:
        """Id of the controlled node."""
        return self.node.id

    @abstractmethod
    def act(self, slot: int) -> Transmission | None:
        """Decide the node's action for ``slot``.

        Returns:
            A :class:`Transmission` to send in this slot, or ``None`` to
            listen.
        """

    def act_batch(self, slot: int) -> tuple[float, Any] | None:
        """Batch-path action for ``slot``: ``(power, message)`` or ``None``.

        The batch slot engine calls this instead of :meth:`act`, collecting
        powers straight into arrays without building :class:`Transmission`
        objects (the sender is this agent's node by construction).  The
        default delegates to :meth:`act`, so existing agents work unchanged;
        protocol agents on the hot path override it and implement :meth:`act`
        as a thin wrapper.  Exactly one of the two is invoked per slot, so
        both may consume randomness and mutate state.
        """
        action = self.act(slot)
        if action is None:
            return None
        if action.sender.id != self.node_id:
            raise ProtocolError(
                f"agent {self.node_id} attempted to transmit as node {action.sender.id}"
            )
        return action.power, action.message

    @abstractmethod
    def observe(self, slot: int, reception: Reception | None) -> None:
        """Deliver the outcome of ``slot`` to the agent.

        Args:
            slot: the global slot index.
            reception: the message decoded by this node in the slot, or
                ``None`` if the node transmitted or decoded nothing.
        """

    def is_done(self) -> bool:
        """Whether the agent has finished its protocol (used for early exit)."""
        return False

    def on_crash(self, slot: int) -> None:
        """Notify the agent that its node crashed at ``slot``.

        Called by fault-injecting runtimes (``repro.netsim``) when the fault
        plan takes the node down.  While crashed the agent is neither polled
        nor delivered to.  The default keeps all state (crash-recover
        semantics); subclasses may drop volatile in-flight state here.
        """

    def on_recover(self, slot: int) -> None:
        """Notify the agent that its node came back up at ``slot``.

        The agent resumes being polled from this slot on.  Protocol agents
        whose per-slot state is only meaningful within a slot pair (e.g. a
        pending broadcast awaiting its ack phase) should discard it here -
        the context it referred to has passed while the node was down.
        """

    def summary(self) -> dict[str, Any]:
        """Small diagnostic dictionary (protocol-specific)."""
        return {"node_id": self.node_id, "done": self.is_done()}
