"""Per-node agents.

Every distributed algorithm in the library is written as a subclass of
:class:`NodeAgent`: an object holding only the node's local state, deciding at
each slot whether to transmit (and what and at which power) or to listen, and
updating its state from whatever the channel delivers.  Agents never see
global state; the simulator is the only component that touches the channel.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

import numpy as np

from ..geometry import Node
from ..sinr import Reception, Transmission

__all__ = ["NodeAgent"]


class NodeAgent(ABC):
    """Base class for the local protocol state machine of one node.

    Args:
        node: the wireless node this agent controls.
        rng: the agent's private source of randomness.  Each agent gets its
            own generator so runs are reproducible regardless of the order in
            which the simulator polls agents.
    """

    def __init__(self, node: Node, rng: np.random.Generator):
        self.node = node
        self.rng = rng

    @property
    def node_id(self) -> int:
        """Id of the controlled node."""
        return self.node.id

    @abstractmethod
    def act(self, slot: int) -> Transmission | None:
        """Decide the node's action for ``slot``.

        Returns:
            A :class:`Transmission` to send in this slot, or ``None`` to
            listen.
        """

    @abstractmethod
    def observe(self, slot: int, reception: Reception | None) -> None:
        """Deliver the outcome of ``slot`` to the agent.

        Args:
            slot: the global slot index.
            reception: the message decoded by this node in the slot, or
                ``None`` if the node transmitted or decoded nothing.
        """

    def is_done(self) -> bool:
        """Whether the agent has finished its protocol (used for early exit)."""
        return False

    def summary(self) -> dict[str, Any]:
        """Small diagnostic dictionary (protocol-specific)."""
        return {"node_id": self.node_id, "done": self.is_done()}
