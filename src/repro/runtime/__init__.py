"""Distributed runtime: agents, messages, lock-step slotted simulator."""

from .agent import NodeAgent
from .message import AckMessage, BroadcastMessage, DataMessage
from .simulator import Simulator, spawn_agent_rngs
from .trace import ColumnarTrace, ExecutionTrace, SlotRecord

__all__ = [
    "NodeAgent",
    "BroadcastMessage",
    "AckMessage",
    "DataMessage",
    "Simulator",
    "spawn_agent_rngs",
    "ColumnarTrace",
    "ExecutionTrace",
    "SlotRecord",
]
