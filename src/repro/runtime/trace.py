"""Execution traces and slot accounting for distributed runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["SlotRecord", "ExecutionTrace"]


@dataclass(frozen=True)
class SlotRecord:
    """What happened in one slot of a simulated execution.

    Attributes:
        slot: global slot index.
        transmitters: ids of the nodes that transmitted.
        receptions: mapping from listener id to the id of the decoded sender.
        label: optional protocol-specific tag (e.g. "broadcast" / "ack").
    """

    slot: int
    transmitters: tuple[int, ...]
    receptions: dict[int, int]
    label: str = ""


@dataclass
class ExecutionTrace:
    """Accumulated record of a simulated protocol execution."""

    records: list[SlotRecord] = field(default_factory=list)
    metadata: dict[str, Any] = field(default_factory=dict)

    def record(self, record: SlotRecord) -> None:
        """Append one slot record."""
        self.records.append(record)

    @property
    def slots_used(self) -> int:
        """Total number of slots recorded."""
        return len(self.records)

    @property
    def transmissions_sent(self) -> int:
        """Total number of individual transmissions across all slots."""
        return sum(len(r.transmitters) for r in self.records)

    @property
    def successful_receptions(self) -> int:
        """Total number of successful receptions across all slots."""
        return sum(len(r.receptions) for r in self.records)

    def busy_slots(self) -> int:
        """Number of slots in which at least one node transmitted."""
        return sum(1 for r in self.records if r.transmitters)

    def slots_with_label(self, label: str) -> list[SlotRecord]:
        """All slot records carrying the given label."""
        return [r for r in self.records if r.label == label]

    def summary(self) -> dict[str, Any]:
        """Compact summary used by experiment reports."""
        return {
            "slots_used": self.slots_used,
            "busy_slots": self.busy_slots(),
            "transmissions_sent": self.transmissions_sent,
            "successful_receptions": self.successful_receptions,
            **self.metadata,
        }
