"""Execution traces and slot accounting for distributed runs.

Two trace backends share one API:

* :class:`ExecutionTrace` - the seed record-based store: one
  :class:`SlotRecord` (tuple of transmitter ids + reception dict) per slot.
* :class:`ColumnarTrace` - a columnar store: flat integer arrays plus
  per-slot offsets.  Appending a slot touches no per-slot Python containers,
  which is what the batch slot engine needs; the ``records`` /
  ``slots_used`` / ``busy_slots`` API is preserved on top by materializing
  :class:`SlotRecord` views on demand.  With ``reception_detail=False``
  ("counts" level) only per-slot transmission/reception counts are kept,
  for experiments that never read individual receptions.
"""

from __future__ import annotations

from array import array
from typing import Any, Iterable, Sequence

__all__ = ["SlotRecord", "ExecutionTrace", "ColumnarTrace"]


from dataclasses import dataclass


@dataclass(frozen=True)
class SlotRecord:
    """What happened in one slot of a simulated execution.

    Attributes:
        slot: global slot index.
        transmitters: ids of the nodes that transmitted.
        receptions: mapping from listener id to the id of the decoded sender.
        label: optional protocol-specific tag (e.g. "broadcast" / "ack").
    """

    slot: int
    transmitters: tuple[int, ...]
    receptions: dict[int, int]
    label: str = ""


class ExecutionTrace:
    """Accumulated record of a simulated protocol execution (record store)."""

    __slots__ = ('metadata', 'records')

    def __init__(
        self,
        records: Iterable[SlotRecord] | None = None,
        metadata: dict[str, Any] | None = None,
    ):
        self.records: list[SlotRecord] = list(records) if records is not None else []
        self.metadata: dict[str, Any] = dict(metadata) if metadata is not None else {}

    def record(self, record: SlotRecord) -> None:
        """Append one slot record."""
        self.records.append(record)

    def append_slot(
        self,
        slot: int,
        transmitter_ids: Sequence[int],
        reception_pairs: Sequence[tuple[int, int]],
        label: str = "",
    ) -> SlotRecord | None:
        """Append one slot from its components (the slot engine's entry point).

        Returns the stored :class:`SlotRecord`; columnar backends return
        ``None`` instead of materializing one.
        """
        record = SlotRecord(
            slot=slot,
            transmitters=tuple(transmitter_ids),
            receptions=dict(reception_pairs),
            label=label,
        )
        self.record(record)
        return record

    @property
    def slots_used(self) -> int:
        """Total number of slots recorded."""
        return len(self.records)

    @property
    def transmissions_sent(self) -> int:
        """Total number of individual transmissions across all slots."""
        return sum(len(r.transmitters) for r in self.records)

    @property
    def successful_receptions(self) -> int:
        """Total number of successful receptions across all slots."""
        return sum(len(r.receptions) for r in self.records)

    def busy_slots(self) -> int:
        """Number of slots in which at least one node transmitted."""
        return sum(1 for r in self.records if r.transmitters)

    def slots_with_label(self, label: str) -> list[SlotRecord]:
        """All slot records carrying the given label."""
        return [r for r in self.records if r.label == label]

    def summary(self) -> dict[str, Any]:
        """Compact summary used by experiment reports."""
        return {
            "slots_used": self.slots_used,
            "busy_slots": self.busy_slots(),
            "transmissions_sent": self.transmissions_sent,
            "successful_receptions": self.successful_receptions,
            **self.metadata,
        }


class ColumnarTrace(ExecutionTrace):
    """Columnar trace backend: flat id arrays plus per-slot offsets.

    Args:
        metadata: free-form experiment metadata, as on :class:`ExecutionTrace`.
        reception_detail: when ``False``, individual transmitter/listener ids
            are dropped and only per-slot counts are kept (``trace_level
            ="counts"``); ``records`` and ``slots_with_label`` are then
            unavailable, but every aggregate (``slots_used``, ``busy_slots``,
            ``transmissions_sent``, ``successful_receptions``, ``summary``)
            still works.
    """

    def __init__(
        self,
        metadata: dict[str, Any] | None = None,
        *,
        reception_detail: bool = True,
    ):
        # Deliberately no super().__init__(): `records` is a materialized
        # property here, not storage.
        self.metadata: dict[str, Any] = dict(metadata) if metadata is not None else {}
        self.reception_detail = reception_detail
        self._slots = array("q")
        self._labels: list[str] = []
        self._tx_counts = array("q")
        self._rx_counts = array("q")
        if reception_detail:
            self._tx_flat: array | None = array("q")
            self._tx_offsets: array | None = array("q", [0])
            self._rx_listeners: array | None = array("q")
            self._rx_senders: array | None = array("q")
            self._rx_offsets: array | None = array("q", [0])
        else:
            self._tx_flat = None
            self._tx_offsets = None
            self._rx_listeners = None
            self._rx_senders = None
            self._rx_offsets = None
        self._materialized: list[SlotRecord] | None = None

    # -- writing -------------------------------------------------------------

    def append_slot(
        self,
        slot: int,
        transmitter_ids: Sequence[int],
        reception_pairs: Sequence[tuple[int, int]],
        label: str = "",
    ) -> None:
        self._slots.append(slot)
        self._labels.append(label)
        self._tx_counts.append(len(transmitter_ids))
        self._rx_counts.append(len(reception_pairs))
        if self.reception_detail:
            self._tx_flat.extend(transmitter_ids)
            self._tx_offsets.append(len(self._tx_flat))
            for listener_id, sender_id in reception_pairs:
                self._rx_listeners.append(listener_id)
                self._rx_senders.append(sender_id)
            self._rx_offsets.append(len(self._rx_listeners))
        self._materialized = None
        return None

    def record(self, record: SlotRecord) -> None:
        """Append one :class:`SlotRecord` by decomposing it into columns."""
        self.append_slot(
            record.slot, record.transmitters, list(record.receptions.items()), record.label
        )

    # -- reading -------------------------------------------------------------

    @property
    def records(self) -> list[SlotRecord]:
        """Materialized :class:`SlotRecord` view of the columns (cached)."""
        if not self.reception_detail:
            raise ValueError(
                "this trace was collected with trace_level='counts' and retains "
                "no per-slot transmitter/reception detail; use the aggregate "
                "properties or collect with trace_level='columnar'"
            )
        if self._materialized is None:
            records = []
            for k in range(len(self._slots)):
                t0, t1 = self._tx_offsets[k], self._tx_offsets[k + 1]
                r0, r1 = self._rx_offsets[k], self._rx_offsets[k + 1]
                records.append(
                    SlotRecord(
                        slot=self._slots[k],
                        transmitters=tuple(self._tx_flat[t0:t1]),
                        receptions={
                            self._rx_listeners[j]: self._rx_senders[j] for j in range(r0, r1)
                        },
                        label=self._labels[k],
                    )
                )
            self._materialized = records
        return self._materialized

    @property
    def slots_used(self) -> int:
        return len(self._slots)

    @property
    def transmissions_sent(self) -> int:
        return int(sum(self._tx_counts))

    @property
    def successful_receptions(self) -> int:
        return int(sum(self._rx_counts))

    def busy_slots(self) -> int:
        return sum(1 for count in self._tx_counts if count)

    def slots_with_label(self, label: str) -> list[SlotRecord]:
        return [r for r in self.records if r.label == label]
