"""Exception hierarchy for the ``repro`` library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "DeploymentError",
    "InfeasiblePowerError",
    "ScheduleError",
    "ProtocolError",
    "ConvergenceError",
    "TransportError",
    "DeliveryTimeout",
    "NodeCrashedError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """Raised when a component is constructed with inconsistent parameters."""


class DeploymentError(ReproError):
    """Raised when a node deployment cannot be generated as requested."""


class InfeasiblePowerError(ReproError):
    """Raised when no power assignment can make a link set feasible."""


class ScheduleError(ReproError):
    """Raised when a schedule violates feasibility or ordering constraints."""


class ProtocolError(ReproError):
    """Raised when a distributed protocol reaches an invalid state."""


class ConvergenceError(ReproError):
    """Raised when an iterative algorithm fails to converge within its budget."""


class TransportError(ProtocolError):
    """Raised when the message-passing transport layer fails structurally."""


class DeliveryTimeout(TransportError):
    """Raised when a reliable send exhausts its retry budget without an ack."""


class NodeCrashedError(ProtocolError):
    """Raised when an operation requires a node that has crashed."""
