"""F3 benchmark - uniform power's worst case (exponential chain)."""

from repro.experiments import f3_uniform_lower_bound

from .conftest import run_experiment


def bench_f3_uniform_lower_bound(benchmark, config):
    result = run_experiment(benchmark, f3_uniform_lower_bound.run, config)
    # Uniform power degenerates to (nearly) one slot per link on this family,
    # while power control stays far below it.
    assert result.summary["uniform_slots_per_link_at_max_n"] >= 0.8
    assert result.summary["tvc_arbitrary_vs_uniform"] < 1.0
