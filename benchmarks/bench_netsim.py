"""Netsim benchmark: the message runtime's overhead over the lockstep engine.

Runs the same ``Init`` instance three ways:

* **lockstep**: the batch-engine oracle (``InitialTreeBuilder``);
* **netsim zero-fault**: the message runtime over a perfect transport - must
  produce the bit-identical trace and tree (asserted on every run, timed or
  not: this is the parity pin the whole package rests on);
* **netsim lossy**: 10% drops, to record what fault injection itself costs.

The headline number is the zero-fault netsim run; the printed ratio against
lockstep is the price of the transport seam (delivery filtering, heartbeats,
the failure detector).  In timed runs the zero-fault seam must stay within
``OVERHEAD_CEILING`` of the lockstep engine - the runtime is a testing
instrument, not a replacement engine, but an order-of-magnitude regression
would make the chaos suite unusably slow.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import InitialTreeBuilder
from repro.geometry import deployment_by_name
from repro.netsim import (
    CrashSchedule,
    FaultPlan,
    NetInitBuilder,
    election_priority,
    run_root_failover,
)
from repro.netsim.faults import CrashWindow
from repro.sinr import SINRParameters

N_NODES = 96
SEED = 17
#: Zero-fault netsim slowdown over lockstep tolerated in timed runs.
OVERHEAD_CEILING = 6.0


def _nodes():
    return deployment_by_name("uniform", N_NODES, np.random.default_rng(SEED))


def _run_lockstep(params):
    return InitialTreeBuilder(params).build(_nodes(), np.random.default_rng(SEED + 1))


def _run_netsim(params, plan=None):
    return NetInitBuilder(params, plan=plan).build(
        _nodes(), np.random.default_rng(SEED + 1)
    )


def _timed(fn, repeats):
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _assert_parity(oracle, outcome):
    assert outcome.tree.root_id == oracle.tree.root_id
    assert outcome.tree.parent == oracle.tree.parent
    assert outcome.slots_used == oracle.slots_used
    assert outcome.trace.records == oracle.trace.records


def bench_netsim(benchmark):
    params = SINRParameters()
    oracle = _run_lockstep(params)

    if not benchmark.enabled:
        # Blocking CI smoke: the parity pin always runs; wall-clock ratios on
        # shared runners never gate merges.
        _assert_parity(oracle, _run_netsim(params))
        lossy = _run_netsim(params, FaultPlan(seed=SEED, drop_prob=0.10))
        lossy.tree.validate()
        benchmark.pedantic(lambda: _run_netsim(params), rounds=1, iterations=1)
        return

    lockstep_time, _ = _timed(lambda: _run_lockstep(params), repeats=2)
    netsim_time, outcome = _timed(lambda: _run_netsim(params), repeats=2)
    _assert_parity(oracle, outcome)
    benchmark.pedantic(lambda: _run_netsim(params), rounds=1, iterations=1)

    lossy_plan = FaultPlan(seed=SEED, drop_prob=0.10)
    lossy_time, lossy = _timed(lambda: _run_netsim(params, lossy_plan), repeats=2)
    lossy.tree.validate()

    ratio = netsim_time / max(lockstep_time, 1e-9)
    print()
    print(
        f"netsim Init {N_NODES} nodes: lockstep {lockstep_time:.3f}s, "
        f"netsim zero-fault {netsim_time:.3f}s ({ratio:.2f}x), "
        f"netsim 10% loss {lossy_time:.3f}s "
        f"({lossy.slots_used}/{oracle.slots_used} slots)"
    )
    assert ratio <= OVERHEAD_CEILING, (
        f"zero-fault netsim runtime is {ratio:.1f}x the lockstep engine "
        f"(ceiling: {OVERHEAD_CEILING}x)"
    )


def _run_failover(params, tree, power, root):
    plan = FaultPlan(
        seed=SEED, drop_prob=0.10, crashes=CrashSchedule((CrashWindow(root, 0),))
    )
    return run_root_failover(
        tree,
        power,
        params=params,
        plan=plan,
        crashed_ids=[root],
        rng=np.random.default_rng(SEED + 2),
    )


def bench_election_failover(benchmark):
    """Root-failover latency: election + re-root + repair at 10% loss.

    The liveness pin always runs: the survivors elect the max-priority live
    node, the tree re-roots at it and spans every survivor.  Timed runs
    record the wall-clock of the whole recovery (the election itself is a
    few slots; the cost is the completion patch re-attaching the dead
    root's orphans).
    """
    params = SINRParameters()
    oracle = _run_lockstep(params)
    tree, power, root = oracle.tree, oracle.power, oracle.tree.root_id

    failover = _run_failover(params, tree, power, root)
    survivors = set(tree.nodes) - {root}
    assert failover.new_root_id == max(
        survivors, key=lambda nid: election_priority(SEED, nid)
    )
    assert failover.tree.root_id == failover.new_root_id
    assert set(failover.tree.nodes) == survivors
    failover.tree.validate()
    assert failover.election.slots_used > 0

    benchmark.pedantic(
        lambda: _run_failover(params, tree, power, root), rounds=1, iterations=1
    )
