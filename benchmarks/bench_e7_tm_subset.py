"""E7 benchmark - Theorem 13: T(M) is O(1)-sparse and a constant fraction of T."""

from repro.experiments import e7_tm_subset

from .conftest import run_experiment


def bench_e7_tm_subset(benchmark, config):
    result = run_experiment(benchmark, e7_tm_subset.run, config)
    assert result.summary["min_fraction"] >= 0.4
    assert result.summary["max_tm_sparsity"] <= 12
