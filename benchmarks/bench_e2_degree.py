"""E2 benchmark - Theorem 7: Init tree max degree is O(log n)."""

from repro.experiments import e2_degree

from .conftest import run_experiment


def bench_e2_degree(benchmark, config):
    result = run_experiment(benchmark, e2_degree.run, config)
    assert result.summary["max_max_degree_per_log_n"] < 4.0
