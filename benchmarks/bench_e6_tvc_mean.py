"""E6 benchmark - Theorem 16: TreeViaCapacity + mean power, O(Upsilon log n) slots."""

from repro.experiments import e6_tvc_mean

from .conftest import run_experiment


def bench_e6_tvc_mean(benchmark, config):
    result = run_experiment(benchmark, e6_tvc_mean.run, config)
    assert result.summary["all_feasible"]
    assert result.summary["mean_len_per_upsilon_log_n"] < 3.0
