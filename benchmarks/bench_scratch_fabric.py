"""Scratch-arena decode and shared-memory trial-fabric benchmarks (PR 5).

Two workloads, each with its pre-PR oracle run alongside for parity:

* **slot decode** - 256 agents x 2000 slots of SINR decode.  The baseline
  is the PR-4 allocating path (one ``resolve_indices_full`` per slot,
  ``np.ix_`` gathers + fresh temporaries per call); the fast path stacks
  the slots in chunks through ``resolve_indices_many`` on a
  :class:`~repro.state.DecodeWorkspace` (one row-take gather per chunk,
  ``out=`` kernels, zero steady-state allocation).  Outputs are asserted
  bit-identical per slot; the timed run enforces the >= 2x acceptance
  floor.
* **trial fabric** - an 8-trial Monte-Carlo sweep over one shared
  256-node geometry.  The baseline is the pre-PR cold path (a fresh
  ``ProcessPoolExecutor`` per sweep, the O(n^2) matrices pickled into
  every task); the fast path runs on the persistent shared-memory fabric
  (pool created once, matrices exported once, zero-copy in workers,
  chunked tasks).  Results are asserted identical to the sequential run
  and to the cold pool; the timed run enforces the >= 1.5x floor.

Under ``--benchmark-disable`` (the blocking CI smoke) only the parity
checks run - wall-clock ratios on noisy shared runners must not gate
merges.
"""

from __future__ import annotations

import time

import numpy as np

from repro.experiments import map_trials, map_trials_cold, shared_state
from repro.geometry import deployment_by_name
from repro.sinr import CachedChannel, NodeArrayCache, SINRParameters
from repro.state import DecodeWorkspace, NetworkState
from repro.dynamics import RayleighFading

N_AGENTS = 256
N_SLOTS = 2000
N_TRANSMITTERS = 32
CHUNK = 50
DECODE_SPEEDUP_FLOOR = 2.0

N_TRIALS = 8
TRIAL_STACK = 24
FABRIC_WORKERS = 2
FABRIC_SPEEDUP_FLOOR = 1.5


# -- slot decode: workspace + stacked kernels vs the PR-4 allocating path ----


def _decode_setup(slots: int):
    params = SINRParameters()
    nodes = deployment_by_name("uniform", N_AGENTS, np.random.default_rng(5))
    channel = CachedChannel(params, nodes)
    tx = np.arange(0, N_AGENTS, N_AGENTS // N_TRANSMITTERS, dtype=np.intp)
    base = params.min_power_for(1.5)
    # Deterministic per-slot power ramp: every slot decodes differently, so
    # the stacked path cannot cheat by reusing a slot's result.
    powers = base * (1.0 + 0.25 * ((np.arange(slots * len(tx)) % 97) / 97.0)).reshape(
        slots, len(tx)
    )
    # Materialize the attenuation store once, outside timing - both paths
    # gather from the same state matrices (that was PR 4's contribution).
    channel.cache.state.attenuation_matrix(params.alpha)
    return channel, tx, powers


def _run_decode_allocating(channel, tx, powers):
    """PR-4 path: one allocating full-universe decode per slot."""
    outputs = []
    for slot in range(powers.shape[0]):
        best, sinr, ok = channel.resolve_indices_full(tx, powers[slot], slot=slot)
        outputs.append((best, sinr, ok))
    return outputs


def _run_decode_stacked(channel, tx, powers):
    """PR-5 path: slots decoded in stacked chunks on one scratch arena."""
    workspace = DecodeWorkspace()
    outputs = []
    slots = powers.shape[0]
    for start in range(0, slots, CHUNK):
        stop = min(start + CHUNK, slots)
        best, sinr, ok = channel.resolve_indices_many(
            tx,
            powers[start:stop],
            slots=np.arange(start, stop, dtype=np.int64),
            workspace=workspace,
        )
        # The stacked outputs are workspace views; snapshot each chunk
        # before the next one reuses the buffers (real consumers reduce the
        # chunk immediately and skip even this copy).
        outputs.append((best.copy(), sinr.copy(), ok.copy()))
    return outputs


def _assert_decode_parity(fast_chunks, baseline):
    flat = [
        (best[row], sinr[row], ok[row])
        for best, sinr, ok in fast_chunks
        for row in range(best.shape[0])
    ]
    assert len(flat) == len(baseline)
    for (fb, fs, fo), (bb, bs, bo) in zip(flat, baseline):
        assert np.array_equal(fb, bb)
        assert np.array_equal(fs, bs, equal_nan=True)
        assert np.array_equal(fo, bo)


def _timed(fn, repeats: int):
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def bench_scratch_decode(benchmark):
    if not benchmark.enabled:
        # Blocking CI smoke: parity on a shortened run, no wall-clock gate.
        channel, tx, powers = _decode_setup(200)
        _assert_decode_parity(
            _run_decode_stacked(channel, tx, powers),
            _run_decode_allocating(channel, tx, powers),
        )
        benchmark.pedantic(
            lambda: _run_decode_stacked(channel, tx, powers), rounds=1, iterations=1
        )
        return

    channel, tx, powers = _decode_setup(N_SLOTS)
    fast_time, fast = _timed(lambda: _run_decode_stacked(channel, tx, powers), repeats=3)
    benchmark.pedantic(
        lambda: _run_decode_stacked(channel, tx, powers), rounds=1, iterations=1
    )
    base_time, baseline = _timed(
        lambda: _run_decode_allocating(channel, tx, powers), repeats=3
    )
    _assert_decode_parity(fast, baseline)

    speedup = base_time / fast_time
    print()
    print(
        f"slot decode {N_AGENTS} agents x {N_SLOTS} slots: "
        f"stacked+workspace {fast_time:.3f}s, PR-4 allocating path {base_time:.3f}s, "
        f"speedup {speedup:.1f}x"
    )
    assert speedup >= DECODE_SPEEDUP_FLOOR, (
        f"scratch/stacked decode only {speedup:.1f}x over the PR-4 allocating "
        f"path (required: {DECODE_SPEEDUP_FLOOR}x)"
    )


# -- trial fabric: persistent shared-memory pool vs cold pickle-per-trial ----


def _fabric_state() -> tuple[NetworkState, SINRParameters]:
    params = SINRParameters()
    nodes = deployment_by_name("uniform", N_AGENTS, np.random.default_rng(7))
    state = NetworkState(nodes)
    state.distance_matrix()
    state.attenuation_matrix(params.alpha)
    return state, params


def _mc_trial(state: NetworkState, seed: int) -> tuple[int, float, int]:
    """One Monte-Carlo trial over a shared geometry store.

    Draws a seeded transmitter set and power stack, decodes ``TRIAL_STACK``
    Rayleigh-faded slots in one stacked pass, and reduces to a digest that
    is bitwise comparable across processes.
    """
    params = SINRParameters(gain_model=RayleighFading(seed=seed))
    rng = np.random.default_rng(4200 + seed)
    cache = NodeArrayCache(state=state)
    channel = CachedChannel(params, cache=cache)
    tx = np.sort(
        rng.choice(len(cache), size=N_TRANSMITTERS, replace=False).astype(np.intp)
    )
    powers = params.min_power_for(1.5) * (
        1.0 + rng.random((TRIAL_STACK, N_TRANSMITTERS))
    )
    best, sinr, ok = channel.resolve_indices_many(
        tx, powers, slots=np.arange(TRIAL_STACK, dtype=np.int64)
    )
    finite = np.isfinite(sinr)
    return int(ok.sum()), float(sinr[finite].sum()), int(best.sum())


def _fabric_trial(args: tuple[int, int]) -> tuple[int, float, int]:
    """Fabric-path trial: geometry arrives zero-copy via the sweep broadcast."""
    (seed,) = args
    state = shared_state()
    assert state is not None, "trial ran outside a state-broadcast sweep"
    return _mc_trial(state, seed)


def _cold_trial(args) -> tuple[int, float, int]:
    """Cold-path trial: the O(n^2) matrices arrive pickled inside the task."""
    xy, ids, dist, att, alpha, seed = args
    state = NetworkState.from_arrays(xy, ids, distances=dist, attenuation={alpha: att})
    return _mc_trial(state, seed)


def _run_fabric_sweep(state: NetworkState):
    return map_trials(
        _fabric_trial,
        [(seed,) for seed in range(N_TRIALS)],
        workers=FABRIC_WORKERS,
        state=state,
        # Ship the d**alpha store alongside so workers decode straight from
        # the broadcast instead of re-deriving it from the shared distances.
        state_alphas=(SINRParameters().alpha,),
    )


def _run_cold_sweep(state: NetworkState, alpha: float):
    n = len(state)
    xy = state.xy[:n].copy()
    ids = state.ids[:n].copy()
    dist = state.distance_matrix()[:n, :n].copy()
    att = state.attenuation_matrix(alpha)[:n, :n].copy()
    return map_trials_cold(
        _cold_trial,
        [(xy, ids, dist, att, alpha, seed) for seed in range(N_TRIALS)],
        workers=FABRIC_WORKERS,
    )


def bench_trial_fabric(benchmark):
    state, params = _fabric_state()
    sequential = [_mc_trial(state, seed) for seed in range(N_TRIALS)]

    if not benchmark.enabled:
        # Blocking CI smoke: every path must agree bit-for-bit; no timing.
        assert _run_fabric_sweep(state) == sequential
        assert _run_cold_sweep(state, params.alpha) == sequential
        benchmark.pedantic(lambda: _run_fabric_sweep(state), rounds=1, iterations=1)
        return

    # Warm the persistent pool once (that is the fabric's whole point: a
    # run's first sweep pays pool start-up, every later sweep reuses it);
    # the cold path pays creation + pickling on every sweep by design.
    warm = _run_fabric_sweep(state)
    assert warm == sequential

    fabric_time, fabric_rows = _timed(lambda: _run_fabric_sweep(state), repeats=2)
    benchmark.pedantic(lambda: _run_fabric_sweep(state), rounds=1, iterations=1)
    cold_time, cold_rows = _timed(lambda: _run_cold_sweep(state, params.alpha), repeats=2)
    assert fabric_rows == sequential
    assert cold_rows == sequential

    speedup = cold_time / fabric_time
    print()
    print(
        f"trial fabric {N_TRIALS} trials x {N_AGENTS} nodes (workers={FABRIC_WORKERS}): "
        f"shared-memory pool {fabric_time:.3f}s, cold pickle pool {cold_time:.3f}s, "
        f"speedup {speedup:.1f}x"
    )
    assert speedup >= FABRIC_SPEEDUP_FLOOR, (
        f"shared-memory fabric only {speedup:.1f}x over the cold pickle-per-trial "
        f"pool (required: {FABRIC_SPEEDUP_FLOOR}x)"
    )
