"""E4 benchmark - Theorem 3: mean-power rescheduling of the Init tree."""

from repro.experiments import e4_reschedule

from .conftest import run_experiment


def bench_e4_reschedule(benchmark, config):
    result = run_experiment(benchmark, e4_reschedule.run, config)
    assert result.summary["all_feasible"]
