"""E8 benchmark - bi-tree latency: convergecast, broadcast, pairwise traffic."""

from repro.experiments import e8_latency

from .conftest import run_experiment


def bench_e8_latency(benchmark, config):
    result = run_experiment(benchmark, e8_latency.run, config)
    assert result.summary["all_convergecasts_correct"]
    assert result.summary["all_broadcasts_complete"]
    assert result.summary["all_pairwise_delivered"]
