"""F2 benchmark - Delta dependence of construction cost and schedule length."""

from repro.experiments import f2_delta

from .conftest import run_experiment


def bench_f2_delta(benchmark, config):
    result = run_experiment(benchmark, f2_delta.run, config)
    # Construction cost (Init) must grow with Delta; the power-controlled
    # schedule length must stay essentially flat.
    assert result.summary["init_slots_growth"] > 1.2
    assert result.summary["tvc_arbitrary_growth"] < 2.5
