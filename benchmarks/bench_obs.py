"""Telemetry overhead benchmarks (PR 8): disabled must be free, timers cheap.

Three states of the stacked decode workload from ``bench_scratch_fabric``:

* **plain** — no wrappers installed (the PR-5/PR-7 fast path);
* **disabled** — timing wrappers installed but telemetry off, i.e. the
  enabled-guard branch per kernel call: must stay within 2% of plain;
* **enabled** — wrappers installed and telemetry recording kernel timers:
  must stay within 15% of plain.

All three states produce bit-identical decode outputs; parity is asserted
in every mode, including the blocking CI smoke (under
``--benchmark-disable`` only the parity checks run — wall-clock ratios on
noisy shared runners must not gate merges).  The enabled run's registry is
exported as ``OBS_TRACE.json`` (Chrome trace-event JSON, Perfetto-loadable)
and ``OBS_METRICS.jsonl`` at the repo root; the bench CI job uploads both
as artifacts.
"""

from __future__ import annotations

import statistics
from pathlib import Path

import numpy as np

from repro.obs import (
    MetricsRegistry,
    instrument_kernels,
    span,
    telemetry,
    validate_chrome_trace,
    chrome_trace,
    write_chrome_trace,
    write_jsonl,
)

from benchmarks.bench_scratch_fabric import _decode_setup, _run_decode_stacked, _timed

REPO_ROOT = Path(__file__).resolve().parent.parent

N_SLOTS_TIMED = 2000
N_SLOTS_SMOKE = 120
REPEATS = 7
#: Telemetry off must cost nothing measurable: <= 2% on the stacked decode.
DISABLED_OVERHEAD_CEILING = 1.02
#: Kernel timers recording on every decode call: <= 15%.
TIMERS_OVERHEAD_CEILING = 1.15


def _assert_stacked_parity(candidate, reference) -> None:
    """Chunk-for-chunk bitwise equality of two stacked decode runs."""
    assert len(candidate) == len(reference)
    for (cb, cs, co), (rb, rs, ro) in zip(candidate, reference):
        assert np.array_equal(cb, rb)
        assert np.array_equal(cs, rs, equal_nan=True)
        assert np.array_equal(co, ro)


def _export_artifacts(registry: MetricsRegistry) -> None:
    """Repo-root telemetry artifacts the bench CI job uploads."""
    validate_chrome_trace(chrome_trace(registry))
    write_chrome_trace(registry, REPO_ROOT / "OBS_TRACE.json")
    write_jsonl(registry, REPO_ROOT / "OBS_METRICS.jsonl")


def bench_obs_overhead(benchmark):
    slots = N_SLOTS_TIMED if benchmark.enabled else N_SLOTS_SMOKE
    channel, tx, powers = _decode_setup(slots)

    def run_plain():
        return _run_decode_stacked(channel, tx, powers)

    registry = MetricsRegistry()

    if not benchmark.enabled:
        # Blocking CI smoke: parity across all three states, no wall-clock gate.
        plain = run_plain()
        with instrument_kernels():
            disabled = run_plain()
            with telemetry(registry):
                with span("bench.decode", slots=slots, mode="smoke"):
                    enabled = run_plain()
        _assert_stacked_parity(disabled, plain)
        _assert_stacked_parity(enabled, plain)
        assert registry.counter_totals().get("kernel.calls", 0) > 0
        _export_artifacts(registry)
        benchmark.pedantic(run_plain, rounds=1, iterations=1)
        return

    def run_enabled():
        with telemetry(registry):
            with span("bench.decode", slots=slots, mode="timed"):
                return run_plain()

    # Interleave the three states within each repeat: timing each state as a
    # contiguous block lets clock-speed drift across the run masquerade as
    # wrapper overhead (the disabled state once measured *slower* than the
    # enabled one purely from ordering).  Each repeat runs the states
    # back-to-back under the same machine conditions, so the per-repeat
    # ratios are drift-free; the median ratio across repeats then shrugs
    # off the odd repeat that caught a scheduler hiccup mid-round-robin.
    run_plain()  # warm caches before the first timed repeat
    plain_ts: list[float] = []
    disabled_ts: list[float] = []
    enabled_ts: list[float] = []
    plain = disabled = enabled = None
    for _ in range(REPEATS):
        dt, plain = _timed(run_plain, repeats=1)
        plain_ts.append(dt)
        with instrument_kernels():
            dt, disabled = _timed(run_plain, repeats=1)
            disabled_ts.append(dt)
            dt, enabled = _timed(run_enabled, repeats=1)
            enabled_ts.append(dt)
    benchmark.pedantic(run_plain, rounds=1, iterations=1)

    _assert_stacked_parity(disabled, plain)
    _assert_stacked_parity(enabled, plain)
    assert registry.counter_totals().get("kernel.calls", 0) > 0
    _export_artifacts(registry)

    disabled_ratio = statistics.median(
        d / p for d, p in zip(disabled_ts, plain_ts)
    )
    enabled_ratio = statistics.median(
        e / p for e, p in zip(enabled_ts, plain_ts)
    )
    print()
    print(
        f"telemetry overhead on stacked decode x {slots} slots "
        f"(median of {REPEATS} per-repeat ratios): "
        f"plain {min(plain_ts):.3f}s, wrappers+off {disabled_ratio:.3f}x, "
        f"wrappers+timers {enabled_ratio:.3f}x"
    )
    assert disabled_ratio <= DISABLED_OVERHEAD_CEILING, (
        f"disabled telemetry costs {disabled_ratio:.3f}x on the stacked decode "
        f"(ceiling: {DISABLED_OVERHEAD_CEILING}x) — the guard idiom leaked"
    )
    assert enabled_ratio <= TIMERS_OVERHEAD_CEILING, (
        f"kernel timers cost {enabled_ratio:.3f}x on the stacked decode "
        f"(ceiling: {TIMERS_OVERHEAD_CEILING}x)"
    )
