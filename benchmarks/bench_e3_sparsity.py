"""E3 benchmark - Theorem 11: Init tree is O(log n)-sparse."""

from repro.experiments import e3_sparsity

from .conftest import run_experiment


def bench_e3_sparsity(benchmark, config):
    result = run_experiment(benchmark, e3_sparsity.run, config)
    assert result.summary["max_psi_per_log_n"] < 4.0
