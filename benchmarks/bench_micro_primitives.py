"""Micro-benchmarks of the SINR substrate primitives.

These are classic pytest-benchmark timings (many rounds) of the hot kernels
the simulations are built on: affectance matrices, feasibility checks, channel
resolution and the power-control solver.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import solve_power
from repro.geometry import uniform_random
from repro.links import Link, LinkSet, sparsity
from repro.sinr import (
    Channel,
    MeanPower,
    SINRParameters,
    Transmission,
    affectance_matrix,
    is_feasible,
)

PARAMS = SINRParameters()


@pytest.fixture(scope="module")
def link_sample() -> list[Link]:
    rng = np.random.default_rng(3)
    nodes = uniform_random(200, rng)
    return [Link(nodes[i], nodes[i + 1]) for i in range(0, 198, 2)]


@pytest.fixture(scope="module")
def mean_power(link_sample) -> MeanPower:
    longest = max(link.length for link in link_sample)
    return MeanPower.for_max_length(PARAMS, longest)


def bench_affectance_matrix_100_links(benchmark, link_sample, mean_power):
    benchmark(affectance_matrix, link_sample, mean_power, PARAMS)


def bench_feasibility_check_100_links(benchmark, link_sample, mean_power):
    benchmark(is_feasible, link_sample, mean_power, PARAMS)


def bench_channel_resolution_100_tx(benchmark, link_sample, mean_power):
    channel = Channel(PARAMS)
    transmissions = [
        Transmission(link.sender, mean_power.power(link), "x") for link in link_sample
    ]
    listeners = [link.receiver for link in link_sample]
    benchmark(channel.resolve, transmissions, listeners)


def bench_sparsity_measurement_100_links(benchmark, link_sample):
    benchmark(sparsity, LinkSet(link_sample))


def bench_power_solver_on_selected_subset(benchmark, link_sample):
    # Solve powers for a capacity-selected, power-controllable subset.
    from repro.core import select_power_controllable_subset

    selected = list(select_power_controllable_subset(link_sample, PARAMS))
    benchmark(solve_power, selected, PARAMS, 1.05)
