"""Micro-benchmarks of the cached link-array engine (``repro.sinr.arrays``).

Times the capacity/scheduling hot path at 500-2000 links and pins down the
headline claim: the incremental-accumulator greedy loop is at least 3x faster
than the seed's full-matrix-recompute loop at 500+ links (in practice ~10x,
growing with instance size), while producing the identical schedule.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.capacity import first_fit_schedule, select_feasible_subset
from repro.core.schedule import Schedule
from repro.geometry import uniform_random
from repro.links import Link
from repro.sinr import (
    LinkArrayCache,
    MeanPower,
    SINRParameters,
    affectance_matrix,
)

PARAMS = SINRParameters(alpha=3.0, beta=1.0, noise=0.5, epsilon=0.1)


def _instance(seed: int, count: int, side: float = 200.0):
    rng = np.random.default_rng(seed)
    nodes = uniform_random(2 * count, rng, side=side)
    links = [Link(nodes[2 * i], nodes[2 * i + 1]) for i in range(count)]
    power = MeanPower.for_max_length(PARAMS, max(l.length for l in links))
    return links, power


def _recompute_first_fit(links, power, params) -> Schedule:
    """The seed greedy loop: rebuilds the slot's affectance matrix per test."""
    link_list = sorted(links, key=lambda link: (-link.length, link.endpoint_ids))
    schedule = Schedule()
    slot_members: list[list[Link]] = []
    slot_nodes: list[set[int]] = []
    for link in link_list:
        placed = False
        for slot_index, members in enumerate(slot_members):
            if (
                link.sender.id in slot_nodes[slot_index]
                or link.receiver.id in slot_nodes[slot_index]
            ):
                continue
            candidate = members + [link]
            matrix = affectance_matrix(candidate, power, params)
            if float(matrix.sum(axis=0).max()) <= 1.0 + 1e-9:
                members.append(link)
                slot_nodes[slot_index].update(link.endpoint_ids)
                schedule.assign(link, slot_index)
                placed = True
                break
        if not placed:
            slot_members.append([link])
            slot_nodes.append(set(link.endpoint_ids))
            schedule.assign(link, len(slot_members) - 1)
    return schedule


@pytest.fixture(scope="module")
def instance_500():
    return _instance(7, 500)


@pytest.fixture(scope="module")
def instance_1000():
    return _instance(8, 1000, side=300.0)


def bench_capacity_greedy_incremental_500(benchmark, instance_500):
    links, power = instance_500
    benchmark.pedantic(
        first_fit_schedule, args=(links, power, PARAMS), rounds=3, iterations=1
    )


def bench_capacity_greedy_recompute_baseline_500(benchmark, instance_500):
    links, power = instance_500
    benchmark.pedantic(
        _recompute_first_fit, args=(links, power, PARAMS), rounds=1, iterations=1
    )


def bench_capacity_greedy_speedup_at_500_links(benchmark, instance_500):
    """Acceptance check: >= 3x over the full-matrix-recompute baseline."""
    links, power = instance_500

    def compare() -> float:
        start = time.perf_counter()
        incremental = first_fit_schedule(links, power, PARAMS)
        mid = time.perf_counter()
        baseline = _recompute_first_fit(links, power, PARAMS)
        end = time.perf_counter()
        assert dict(incremental.items()) == dict(baseline.items())
        return (end - mid) / (mid - start)

    speedup = benchmark.pedantic(compare, rounds=1, iterations=1)
    print(f"\nincremental vs full-recompute speedup at 500 links: {speedup:.1f}x")
    assert speedup >= 3.0


def bench_capacity_greedy_incremental_1000(benchmark, instance_1000):
    links, power = instance_1000
    benchmark.pedantic(
        first_fit_schedule, args=(links, power, PARAMS), rounds=1, iterations=1
    )


def bench_select_feasible_subset_cached_1000(benchmark, instance_1000):
    links, _ = instance_1000
    result = benchmark.pedantic(
        select_feasible_subset, args=(links, PARAMS), rounds=3, iterations=1
    )
    assert len(result.selected) > 0


def bench_affectance_matrix_subset_slicing_2000(benchmark):
    """100 subset queries against one 2000-link cache vs per-call rebuilds."""
    links, power = _instance(9, 2000, side=500.0)
    cache = LinkArrayCache(links)
    rng = np.random.default_rng(9)
    subsets = [rng.choice(len(links), size=64, replace=False) for _ in range(100)]
    # Warm the full-universe matrix once, as the greedy loops do.
    cache.affectance_matrix(power, PARAMS)

    def query_all():
        total = 0.0
        for indices in subsets:
            total += float(cache.affectance_matrix(power, PARAMS, indices).sum())
        return total

    benchmark.pedantic(query_all, rounds=3, iterations=1)
