"""E5 benchmark - Theorems 4/21: TreeViaCapacity + power control, O(log n) slots."""

from repro.experiments import e5_tvc_arbitrary

from .conftest import run_experiment


def bench_e5_tvc_arbitrary(benchmark, config):
    result = run_experiment(benchmark, e5_tvc_arbitrary.run, config)
    assert result.summary["all_valid"]
    assert result.summary["max_len_per_log_n"] < 10.0
