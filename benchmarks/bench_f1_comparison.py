"""F1 benchmark - headline schedule-length comparison across all methods."""

from repro.experiments import f1_comparison

from .conftest import run_experiment


def bench_f1_comparison(benchmark, config):
    result = run_experiment(benchmark, f1_comparison.run, config)
    assert result.summary["ordering_expected"]
    # The distributed power-control structure should be within a small factor
    # of the centralized baseline (the paper's headline claim).
    assert result.summary["tvc_arbitrary_over_centralized"] < 5.0
