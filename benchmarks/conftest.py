"""Shared configuration for the benchmark harness.

Every benchmark wraps one experiment from ``repro.experiments`` (the
experiment index in DESIGN.md / EXPERIMENTS.md), runs it once under
pytest-benchmark timing, prints the regenerated table, and asserts the
experiment's headline check so a benchmark run doubles as a reproduction run.

Run with:  pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentConfig


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    """Sweep used by the benchmark harness (kept laptop-friendly)."""
    return ExperimentConfig(
        sizes=(24, 48, 96),
        delta_targets=(1.0e2, 1.0e4, 1.0e6),
        seeds=(1, 2),
        delta_sweep_size=40,
    )


def run_experiment(benchmark, runner, config):
    """Execute one experiment exactly once under benchmark timing."""
    result = benchmark.pedantic(runner, args=(config,), rounds=1, iterations=1)
    print()
    print(result.table())
    print("summary:", result.summary)
    return result
