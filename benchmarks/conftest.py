"""Shared configuration for the benchmark harness.

Every benchmark wraps one experiment from ``repro.experiments`` (the
experiment index in DESIGN.md / EXPERIMENTS.md), runs it once under
pytest-benchmark timing, prints the regenerated table, and asserts the
experiment's headline check so a benchmark run doubles as a reproduction run.

Run with:  pytest benchmarks/ --benchmark-only

``scripts/run_benchmarks.py`` exports ``REPRO_BENCH_ROUNDS`` /
``REPRO_BENCH_WARMUP``; the ``benchmark`` fixture override below lifts every
``benchmark.pedantic`` call to at least that many timed/warmup rounds, so
baseline JSONs record a real ``stddev_s`` (a single round always records
0.0) without every benchmark re-implementing round handling.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import ExperimentConfig


def _env_rounds(name: str) -> int:
    try:
        return int(os.environ.get(name, "0") or 0)
    except ValueError:
        return 0


@pytest.fixture
def benchmark(benchmark):
    """pytest-benchmark's fixture, with env-driven round minimums applied."""
    rounds = _env_rounds("REPRO_BENCH_ROUNDS")
    warmup = _env_rounds("REPRO_BENCH_WARMUP")
    if benchmark.enabled and (rounds > 1 or warmup > 0):
        pedantic = benchmark.pedantic

        def pedantic_with_rounds(target, args=(), kwargs=None, **options):
            options["rounds"] = max(rounds, int(options.get("rounds", 1)))
            options["warmup_rounds"] = max(warmup, int(options.get("warmup_rounds", 0)))
            return pedantic(target, args=args, kwargs=kwargs, **options)

        benchmark.pedantic = pedantic_with_rounds
    return benchmark


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    """Sweep used by the benchmark harness (kept laptop-friendly)."""
    return ExperimentConfig(
        sizes=(24, 48, 96),
        delta_targets=(1.0e2, 1.0e4, 1.0e6),
        seeds=(1, 2),
        delta_sweep_size=40,
    )


def run_experiment(benchmark, runner, config):
    """Execute one experiment exactly once under benchmark timing."""
    result = benchmark.pedantic(runner, args=(config,), rounds=1, iterations=1)
    print()
    print(result.table())
    print("summary:", result.summary)
    return result
