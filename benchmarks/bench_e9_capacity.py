"""E9 benchmark - Theorem 9 substrate: capacity and scheduling of sparse sets."""

from repro.experiments import e9_capacity

from .conftest import run_experiment


def bench_e9_capacity(benchmark, config):
    result = run_experiment(benchmark, e9_capacity.run, config)
    assert result.summary["all_selected_feasible"]
    assert result.summary["mean_selected_fraction"] > 0.1
