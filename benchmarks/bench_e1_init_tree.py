"""E1 benchmark - Theorem 2: Init builds a bi-tree in O(log Delta log n) slots."""

from repro.experiments import e1_init

from .conftest import run_experiment


def bench_e1_init_tree(benchmark, config):
    result = run_experiment(benchmark, e1_init.run, config)
    assert result.summary["all_strongly_connected"]
    # Slot count stays within a constant multiple of log(Delta) * log(n).
    assert result.summary["max_slots_per_logD_logn"] < 40.0
