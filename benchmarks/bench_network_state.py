"""NetworkState benchmarks: sustained-churn epochs cost O(damage).

The headline number of the network-state backbone: a run of churn epochs -
1-2 node events per epoch at n=512, the E12 regime - driven through one
capacity-managed :class:`~repro.state.NetworkState` (failures release
slots, arrivals patch only their own matrix rows) against the pre-refactor
answer of rebuilding the O(n^2) distance + attenuation caches from scratch
every epoch.  In timed runs the incremental path must be at least
``CHURN_SPEEDUP_FLOOR`` times faster; bitwise parity of every live matrix
block with a from-scratch rebuild is asserted in every mode.
"""

from __future__ import annotations

import time

import numpy as np

from repro.geometry import Node, Point, deployment_by_name
from repro.sinr import SINRParameters
from repro.state import NetworkState

N_NODES = 512
EPOCHS = 24
CHURN_SPEEDUP_FLOOR = 5.0


def _events(
    nodes: list[Node], rng: np.random.Generator, epochs: int
) -> list[tuple[list[int], list[Node]]]:
    """Precompute the churn stream: per epoch, 1-2 failures and as many arrivals.

    Precomputing keeps the incremental and rebuild loops applying the exact
    same events, so the comparison times only the cache maintenance.
    """
    alive = {node.id: node for node in nodes}
    next_id = max(alive) + 1
    events: list[tuple[list[int], list[Node]]] = []
    for epoch in range(epochs):
        k = 1 + (epoch % 2)
        victims = sorted(
            int(v) for v in rng.choice(sorted(alive), size=k, replace=False)
        )
        for victim in victims:
            del alive[victim]
        arrivals = []
        for _ in range(k):
            x, y = rng.uniform(0.0, 60.0, size=2)
            arrivals.append(Node(id=next_id, position=Point(float(x), float(y))))
            alive[next_id] = arrivals[-1]
            next_id += 1
        events.append((victims, arrivals))
    return events


def _materialize(state: NetworkState, alpha: float) -> NetworkState:
    state.distance_matrix()
    state.attenuation_matrix(alpha)
    return state


def _run_incremental(
    state: NetworkState, events: list[tuple[list[int], list[Node]]]
) -> None:
    for victims, arrivals in events:
        state.remove_nodes(victims)
        state.add_nodes(arrivals)


def _run_rebuild(
    nodes: list[Node], events: list[tuple[list[int], list[Node]]], alpha: float
) -> NetworkState:
    """The pre-refactor answer to churn: new caches + O(n^2) matrices per epoch."""
    alive = {node.id: node for node in nodes}
    state = _materialize(NetworkState(alive.values()), alpha)
    for victims, arrivals in events:
        for victim in victims:
            del alive[victim]
        for arrival in arrivals:
            alive[arrival.id] = arrival
        state = _materialize(NetworkState(alive.values()), alpha)
    return state


def _assert_parity(state: NetworkState, alpha: float) -> None:
    live = state.live_slots()
    fresh = _materialize(
        NetworkState([state.node_at(slot) for slot in live.tolist()]), alpha
    )
    block = np.ix_(live, live)
    assert np.array_equal(state.distance_matrix()[block], fresh.distance_matrix())
    assert np.array_equal(
        state.attenuation_matrix(alpha)[block], fresh.attenuation_matrix(alpha)
    )


def bench_network_state_churn(benchmark):
    params = SINRParameters()
    nodes = deployment_by_name("uniform", N_NODES, np.random.default_rng(23))
    epochs = 4 if not benchmark.enabled else EPOCHS
    events = _events(nodes, np.random.default_rng(24), epochs)

    if not benchmark.enabled:
        # Blocking CI smoke: bitwise parity of the spliced store only.
        state = _materialize(NetworkState(nodes), params.alpha)
        _run_incremental(state, events)
        _assert_parity(state, params.alpha)
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        return

    state = _materialize(NetworkState(nodes), params.alpha)
    start = time.perf_counter()
    _run_incremental(state, events)
    incremental_time = time.perf_counter() - start
    _assert_parity(state, params.alpha)

    start = time.perf_counter()
    _run_rebuild(nodes, events, params.alpha)
    rebuild_time = time.perf_counter() - start

    def fresh_incremental():
        _run_incremental(
            _materialize(NetworkState(nodes), params.alpha),
            events,
        )

    benchmark.pedantic(fresh_incremental, rounds=1, iterations=1)
    speedup = rebuild_time / incremental_time
    print()
    print(
        f"sustained churn, n={N_NODES}, {epochs} epochs x 1-2 node events: "
        f"incremental {incremental_time * 1e3:.1f}ms, rebuild {rebuild_time * 1e3:.1f}ms, "
        f"speedup {speedup:.1f}x"
    )
    assert speedup >= CHURN_SPEEDUP_FLOOR, (
        f"O(damage) churn only {speedup:.1f}x faster than per-epoch rebuild "
        f"(required: {CHURN_SPEEDUP_FLOOR}x)"
    )
