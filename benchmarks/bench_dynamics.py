"""Dynamics benchmarks: fading decode overhead + incremental cache moves.

Two micro-benchmarks for the PR-3 dynamics subsystem:

* **bench_dynamics_fading_decode** - the batch slot engine running a beacon
  workload under per-slot Rayleigh fading.  Timed as the headline number;
  in all modes it asserts the two correctness anchors: the deterministic
  gain model is bit-identical to no model at all, and the same fading seed
  reproduces identical outcomes.
* **bench_dynamics_mobility_invalidation** - moving ``k`` of ``n`` nodes via
  :meth:`NodeArrayCache.update_positions` (O(k * n) row/column patching of
  the cached distance + attenuation matrices) against rebuilding the caches
  from scratch (O(n^2)).  In timed runs it asserts the incremental path is
  at least ``INVALIDATION_SPEEDUP_FLOOR`` times faster; parity with the
  rebuilt matrices is asserted bitwise in every mode.
"""

from __future__ import annotations

import time

import numpy as np

from repro.dynamics import DeterministicPathLoss, RayleighFading
from repro.geometry import deployment_by_name
from repro.runtime import NodeAgent, Simulator, spawn_agent_rngs
from repro.sinr import Channel, NodeArrayCache, SINRParameters, Transmission

N_AGENTS = 128
N_SLOTS = 600
N_CACHE_NODES = 512
N_MOVERS = 16
MOVE_ROUNDS = 25
INVALIDATION_SPEEDUP_FLOOR = 3.0


class _Beacon(NodeAgent):
    """Deterministic beacon: transmits every 8th slot, staggered by node id."""

    def __init__(self, node, rng, power):
        super().__init__(node, rng)
        self.power = power
        self.phase = node.id % 8
        self.heard = 0

    def act_batch(self, slot):
        if slot & 7 == self.phase:
            return self.power, None
        return None

    def act(self, slot):
        action = self.act_batch(slot)
        if action is None:
            return None
        return Transmission(self.node, action[0], action[1])

    def observe(self, slot, reception):
        if reception is not None:
            self.heard += 1


def _run_beacons(params: SINRParameters, slots: int):
    nodes = deployment_by_name("uniform", N_AGENTS, np.random.default_rng(15))
    rngs = spawn_agent_rngs(np.random.default_rng(16), N_AGENTS)
    power = params.min_power_for(1.5)
    agents = [_Beacon(node, rng, power) for node, rng in zip(nodes, rngs)]
    simulator = Simulator(agents, Channel(params), engine="batch", trace_level="counts")
    simulator.run(slots)
    return simulator.trace.successful_receptions, [agent.heard for agent in agents]


def bench_dynamics_fading_decode(benchmark):
    params = SINRParameters()
    slots = 120 if not benchmark.enabled else N_SLOTS

    plain = _run_beacons(params, slots)
    tagged = _run_beacons(params.with_overrides(gain_model=DeterministicPathLoss()), slots)
    assert plain == tagged, "deterministic gain model must be bit-identical to no model"

    faded_params = params.with_overrides(gain_model=RayleighFading(seed=7))
    first = _run_beacons(faded_params, slots)
    second = _run_beacons(faded_params, slots)
    assert first == second, "same fading seed must reproduce identical outcomes"
    assert first != plain, "per-slot Rayleigh fading must perturb outcomes"

    benchmark.pedantic(lambda: _run_beacons(faded_params, slots), rounds=1, iterations=1)


def _materialized_cache(alpha: float) -> NodeArrayCache:
    nodes = deployment_by_name("uniform", N_CACHE_NODES, np.random.default_rng(17))
    cache = NodeArrayCache(nodes)
    cache.distance_matrix()
    cache.attenuation_matrix(alpha)
    return cache


def _move_rounds(rng: np.random.Generator) -> list[tuple[np.ndarray, np.ndarray]]:
    moves = []
    for _ in range(MOVE_ROUNDS):
        indices = rng.choice(N_CACHE_NODES, size=N_MOVERS, replace=False).astype(np.intp)
        deltas = rng.normal(0.0, 1.0, size=(N_MOVERS, 2))
        moves.append((indices, deltas))
    return moves


def bench_dynamics_mobility_invalidation(benchmark):
    params = SINRParameters()
    cache = _materialized_cache(params.alpha)
    moves = _move_rounds(np.random.default_rng(18))

    def incremental():
        for indices, deltas in moves:
            cache.update_positions(indices, cache.xy[indices] + deltas)

    def rebuild():
        # The pre-PR-3 answer to movement: throw the caches away and pay the
        # O(n^2) distance + attenuation materialization again per step.
        rebuilt = None
        for _ in moves:
            rebuilt = NodeArrayCache(list(cache.nodes))
            rebuilt.distance_matrix()
            rebuilt.attenuation_matrix(params.alpha)
        return rebuilt

    if not benchmark.enabled:
        # Blocking CI smoke: bitwise parity of the patched matrices only.
        indices, deltas = moves[0]
        cache.update_positions(indices, cache.xy[indices] + deltas)
        fresh = NodeArrayCache(cache.nodes)
        assert np.array_equal(cache.distance_matrix(), fresh.distance_matrix())
        assert np.array_equal(
            cache.attenuation_matrix(params.alpha), fresh.attenuation_matrix(params.alpha)
        )
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        return

    start = time.perf_counter()
    incremental()
    incremental_time = time.perf_counter() - start

    fresh = NodeArrayCache(cache.nodes)
    assert np.array_equal(cache.distance_matrix(), fresh.distance_matrix())
    assert np.array_equal(
        cache.attenuation_matrix(params.alpha), fresh.attenuation_matrix(params.alpha)
    )

    start = time.perf_counter()
    rebuild()
    rebuild_time = time.perf_counter() - start

    benchmark.pedantic(incremental, rounds=1, iterations=1)
    speedup = rebuild_time / incremental_time
    print()
    print(
        f"mobility invalidation {N_MOVERS}/{N_CACHE_NODES} movers x {MOVE_ROUNDS} rounds: "
        f"incremental {incremental_time * 1e3:.1f}ms, rebuild {rebuild_time * 1e3:.1f}ms, "
        f"speedup {speedup:.1f}x"
    )
    assert speedup >= INVALIDATION_SPEEDUP_FLOOR, (
        f"incremental invalidation only {speedup:.1f}x faster than a full rebuild "
        f"(required: {INVALIDATION_SPEEDUP_FLOOR}x)"
    )
