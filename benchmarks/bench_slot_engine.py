"""Slot-engine benchmark: vectorized batch engine vs the seed (PR-1) slot path.

Runs the same 256-agent, 2000-slot beacon workload twice:

* **fast**: batch engine, ``resolve_indices`` over the cached attenuation
  matrix, columnar counts trace;
* **seed**: the PR-1 slot path - legacy engine (per-object ``act``/
  ``resolve``), cached node distances, and the seed per-listener decode loop
  (``decode_reference``) with the record trace.

In timed runs (``--benchmark-only``, ``scripts/run_benchmarks.py``, the
non-blocking CI micro-benchmark job) this asserts PR 2's acceptance
criterion: the fast path is at least 5x faster with identical channel
outcomes.  Under ``--benchmark-disable`` (the blocking CI collection smoke)
only the outcome-parity checks run - wall-clock ratios on noisy shared
runners must not gate merges.
"""

from __future__ import annotations

import time

import numpy as np

from repro.geometry import deployment_by_name
from repro.runtime import NodeAgent, Simulator, spawn_agent_rngs
from repro.sinr import CachedChannel, Channel, SINRParameters, Transmission
from repro.sinr.channel import decode_reference

N_AGENTS = 256
N_SLOTS = 2000
SPEEDUP_FLOOR = 5.0


class ProbeAgent(NodeAgent):
    """Deterministic beacon: transmits every 8th slot, staggered by node id."""

    def __init__(self, node, rng, power):
        super().__init__(node, rng)
        self.power = power
        self.phase = node.id % 8
        self.heard = 0

    def act_batch(self, slot):
        if slot & 7 == self.phase:
            return self.power, None
        return None

    def act(self, slot):
        action = self.act_batch(slot)
        if action is None:
            return None
        return Transmission(self.node, action[0], action[1])

    def observe(self, slot, reception):
        if reception is not None:
            self.heard += 1


class SeedDecodeChannel(CachedChannel):
    """The PR-1 channel: cached node distances, per-listener decode loop.

    Subclassing :class:`CachedChannel` keeps the baseline honest - the seed
    path already sliced a precomputed distance matrix; only the decode loop
    and the object marshalling were scalar.
    """

    def _decode(self, transmissions, active_listeners, dist, powers):
        return decode_reference(transmissions, active_listeners, dist, powers, self.params)


def _make_agents(params: SINRParameters) -> list[ProbeAgent]:
    nodes = deployment_by_name("uniform", N_AGENTS, np.random.default_rng(5))
    rngs = spawn_agent_rngs(np.random.default_rng(6), N_AGENTS)
    power = params.min_power_for(1.5)
    return [ProbeAgent(node, rng, power) for node, rng in zip(nodes, rngs)]


def _run_fast(params: SINRParameters, slots: int):
    agents = _make_agents(params)
    simulator = Simulator(agents, Channel(params), engine="batch", trace_level="counts")
    simulator.run(slots)
    return simulator.trace, [agent.heard for agent in agents]


def _run_seed(params: SINRParameters, slots: int):
    agents = _make_agents(params)
    channel = SeedDecodeChannel(params, [agent.node for agent in agents])
    simulator = Simulator(agents, channel, engine="legacy", trace_level="records")
    simulator.run(slots)
    return simulator.trace, [agent.heard for agent in agents]


def _timed(fn, repeats: int) -> tuple[float, object]:
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _assert_same_outcomes(fast, seed, slots):
    fast_trace, fast_heard = fast
    seed_trace, seed_heard = seed
    assert fast_trace.slots_used == seed_trace.slots_used == slots
    assert fast_trace.transmissions_sent == seed_trace.transmissions_sent
    assert fast_trace.successful_receptions == seed_trace.successful_receptions
    assert fast_heard == seed_heard


def bench_slot_engine(benchmark):
    params = SINRParameters()

    if not benchmark.enabled:
        # Blocking CI smoke: check outcome parity on a shortened run, skip
        # the wall-clock assertion (shared runners are too noisy to gate on).
        slots = 200
        _assert_same_outcomes(_run_fast(params, slots), _run_seed(params, slots), slots)
        benchmark.pedantic(lambda: _run_fast(params, slots), rounds=1, iterations=1)
        return

    fast_time, fast = _timed(lambda: _run_fast(params, N_SLOTS), repeats=2)
    # Record the fast engine as the benchmark's headline number.
    benchmark.pedantic(lambda: _run_fast(params, N_SLOTS), rounds=1, iterations=1)
    seed_time, seed = _timed(lambda: _run_seed(params, N_SLOTS), repeats=2)
    _assert_same_outcomes(fast, seed, N_SLOTS)

    speedup = seed_time / fast_time
    print()
    print(
        f"slot engine {N_AGENTS} agents x {N_SLOTS} slots: "
        f"fast {fast_time:.3f}s, seed (PR-1) path {seed_time:.3f}s, speedup {speedup:.1f}x"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"vectorized slot engine only {speedup:.1f}x faster than the seed "
        f"per-listener decode path (required: {SPEEDUP_FLOOR}x)"
    )
