"""Tiled geometry store benchmarks: past the O(n^2) wall, and not slower before it.

Two claims, each asserted in every mode:

* **Scale** (``bench_tiled_decode_50k``): an E1/E9-style decode workload -
  slot groups resolved over the whole universe plus far-aggregated
  affectance row totals - completes at ``n = 50,000`` with the tiled
  store's derived structures inside a 256 MiB budget, where the dense
  store *provably cannot allocate*: its distance + attenuation matrices
  alone need ``2 * n^2 * 8`` bytes (40 GB at 50k), asserted arithmetically
  against the budget because Linux overcommit would let a live allocation
  "succeed" and then OOM on first touch.
* **No regression at small n** (``bench_tiled_vs_dense_4096``): replaying a
  fixed slot schedule (what a computed schedule does every sweep) at
  ``n = 4096``, the tiled store decodes bitwise-identically to dense and
  within ``RUNTIME_RATIO_CEILING`` of its steady-state runtime, while the
  far-field affectance row totals stay within the declared
  ``far_error_bound()`` of the dense accumulator.

Timed runs also print a same-n speed/memory curve (dense vs tiled) so the
crossover is visible in the benchmark log.
"""

from __future__ import annotations

import time

import numpy as np

from repro.geometry import Node, Point, deployment_by_name
from repro.links import Link
from repro.sinr import (
    AffectanceAccumulator,
    CachedChannel,
    LinearPower,
    LinkArrayCache,
    SINRParameters,
    TiledAffectanceTotals,
)
from repro.state import DecodeWorkspace, TiledNetworkState

#: The headline scale; the dense store would need 40 GB of matrices here.
N_LARGE = 50_000
#: Byte budget for the tiled store's derived structures at the large n.
LARGE_BUDGET_BYTES = 256 * 1024 * 1024
#: Same-n comparison size (dense still comfortable: 268 MB of matrices).
N_COMPARE = 4096
#: Steady-state tiled runtime must stay within this factor of dense.
RUNTIME_RATIO_CEILING = 1.25

SLOT_GROUPS = 32
GROUP_SIZE = 64
SWEEPS = 3


def _schedule(n: int, rng: np.random.Generator) -> list[np.ndarray]:
    """A fixed slot schedule: SLOT_GROUPS groups of GROUP_SIZE transmitters."""
    size = min(GROUP_SIZE, max(1, n // 4))
    return [
        rng.choice(n, size=size, replace=False).astype(np.intp)
        for _ in range(SLOT_GROUPS)
    ]


def _run_sweep(
    channel: CachedChannel,
    schedule: list[np.ndarray],
    workspace: DecodeWorkspace,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Resolve every slot group over the whole universe; collect (best, ok)."""
    out = []
    for slot, tx in enumerate(schedule):
        powers = np.full(tx.size, 2.0)
        best, _, ok = channel.resolve_indices_full(tx, powers, slot=slot, workspace=workspace)
        out.append((np.asarray(best).copy(), np.asarray(ok).copy()))
    return out


def _short_links(count: int, span: float, rng: np.random.Generator) -> list[Link]:
    links = []
    for i in range(count):
        a = rng.uniform(0.0, span, size=2)
        b = a + rng.uniform(-2.0, 2.0, size=2)
        links.append(
            Link(
                Node(2 * i, Point(float(a[0]), float(a[1]))),
                Node(2 * i + 1, Point(float(b[0]), float(b[1]))),
            )
        )
    return links


def bench_tiled_decode_50k(benchmark):
    n = N_LARGE if benchmark.enabled else 2000
    budget = LARGE_BUDGET_BYTES if benchmark.enabled else 4 * 1024 * 1024
    params = SINRParameters().with_overrides(store="tiled")
    rng = np.random.default_rng(29)
    nodes = deployment_by_name("uniform", n, rng)

    # The memory claim, stated arithmetically: the dense store's two
    # matrices cannot fit the budget (overcommit makes a live `np.empty`
    # "succeed" at 40 GB, so allocation failure is not a reliable oracle).
    dense_matrix_bytes = 2 * n * n * 8
    assert dense_matrix_bytes > budget, (
        f"n={n} dense matrices ({dense_matrix_bytes / 1e9:.1f} GB) fit the "
        f"{budget / 1e6:.0f} MB budget; the scale claim is vacuous here"
    )

    state = TiledNetworkState(nodes, budget_bytes=budget)
    channel = CachedChannel(params, cache=None, state=state)
    schedule = _schedule(n, np.random.default_rng(31))
    workspace = DecodeWorkspace()

    def decode_sweeps() -> int:
        decoded = 0
        for _ in range(SWEEPS if benchmark.enabled else 1):
            for best, ok in _run_sweep(channel, schedule, workspace):
                decoded += int(ok.sum())
        return decoded

    start = time.perf_counter()
    decode_sweeps()
    first_pass = time.perf_counter() - start

    # Far-aggregated affectance totals over a link universe on the same
    # field: the E9-style selection loop's data structure at scale.
    link_rng = np.random.default_rng(37)
    links = _short_links(n // 25 if benchmark.enabled else 64, 400.0, link_rng)
    cache = LinkArrayCache(links)
    power = LinearPower.for_noise(SINRParameters())
    totals = TiledAffectanceTotals(cache, power, SINRParameters(), state=state)
    for index in range(0, len(links), 4):
        totals.add(index)
    assert np.isfinite(totals.totals()).all()
    assert totals.far_error_bound() < np.inf

    resident = state.resident_bytes()
    assert resident <= budget, (
        f"derived tiled structures ({resident / 1e6:.1f} MB) exceeded the "
        f"{budget / 1e6:.0f} MB budget"
    )

    if not benchmark.enabled:
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        return

    benchmark.pedantic(decode_sweeps, rounds=1, iterations=1)
    print()
    print(
        f"tiled decode at n={n}: {SLOT_GROUPS} slot groups x {SWEEPS} sweeps in "
        f"{first_pass:.2f}s cold; resident {resident / 1e6:.1f} MB of a "
        f"{budget / 1e6:.0f} MB budget (dense would need {dense_matrix_bytes / 1e9:.1f} GB); "
        f"far error bound {totals.far_error_bound():.3f}"
    )


def bench_tiled_vs_dense_4096(benchmark):
    n = N_COMPARE if benchmark.enabled else 512
    params_dense = SINRParameters()
    params_tiled = params_dense.with_overrides(store="tiled")
    nodes = deployment_by_name("uniform", n, np.random.default_rng(41))
    schedule = _schedule(n, np.random.default_rng(43))

    dense_channel = CachedChannel(params_dense, nodes)
    tiled_channel = CachedChannel(params_tiled, nodes)
    dense_ws, tiled_ws = DecodeWorkspace(), DecodeWorkspace()

    # Warm sweep: dense materializes its matrices, tiled fills its row cache.
    _run_sweep(dense_channel, schedule, dense_ws)
    _run_sweep(tiled_channel, schedule, tiled_ws)

    start = time.perf_counter()
    for _ in range(SWEEPS):
        dense_out = _run_sweep(dense_channel, schedule, dense_ws)
    dense_time = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(SWEEPS):
        tiled_out = _run_sweep(tiled_channel, schedule, tiled_ws)
    tiled_time = time.perf_counter() - start

    # Near-field (decode) parity is bitwise, every slot group.
    for (dense_best, dense_ok), (tiled_best, tiled_ok) in zip(dense_out, tiled_out):
        assert np.array_equal(dense_best, tiled_best)
        assert np.array_equal(dense_ok, tiled_ok)

    # Far-field row totals stay within the declared bound of the dense
    # accumulator over a wide-field link universe.
    links = _short_links(max(64, n // 2), 400.0, np.random.default_rng(47))
    power = LinearPower.for_noise(params_dense)
    link_cache = LinkArrayCache(links)
    dense_totals = AffectanceAccumulator(link_cache.affectance_matrix(power, params_dense))
    tiled_totals = TiledAffectanceTotals(link_cache, power, params_dense, tile_size=40.0)
    for index in range(0, len(links), 2):
        dense_totals.add(index)
        tiled_totals.add(index)
    bound = tiled_totals.far_error_bound()
    exact = dense_totals.totals()
    approx = tiled_totals.totals()
    positive = exact > 0.0
    worst = float(np.abs(approx[positive] - exact[positive]).max(initial=0.0)) if positive.any() else 0.0
    relative = (
        float((np.abs(approx[positive] - exact[positive]) / exact[positive]).max())
        if positive.any()
        else 0.0
    )
    assert relative <= bound + 1e-12, (
        f"far-field row-sum error {relative:.4f} exceeds declared bound {bound:.4f}"
    )

    if not benchmark.enabled:
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        return

    def tiled_sweeps():
        for _ in range(SWEEPS):
            _run_sweep(tiled_channel, schedule, tiled_ws)

    benchmark.pedantic(tiled_sweeps, rounds=1, iterations=1)

    dense_state = dense_channel.cache.state
    dense_bytes = (
        dense_state.distance_matrix().nbytes
        + dense_state.attenuation_matrix(params_dense.alpha).nbytes
    )
    tiled_state = tiled_channel.cache.state
    assert isinstance(tiled_state, TiledNetworkState)
    ratio = tiled_time / dense_time
    print()
    print(f"same-n speed/memory, steady-state schedule replay ({SWEEPS} sweeps):")
    print(
        f"  n={n}  dense {dense_time * 1e3:7.1f}ms {dense_bytes / 1e6:8.1f}MB | "
        f"tiled {tiled_time * 1e3:7.1f}ms {tiled_state.resident_bytes() / 1e6:8.1f}MB | "
        f"ratio {ratio:.3f}"
    )
    print(
        f"  far-field totals: declared bound {bound:.4f}, measured relative "
        f"error {relative:.4f} (worst abs {worst:.2e})"
    )
    assert ratio <= RUNTIME_RATIO_CEILING, (
        f"tiled steady-state decode {ratio:.2f}x dense at n={n} "
        f"(ceiling: {RUNTIME_RATIO_CEILING}x)"
    )
