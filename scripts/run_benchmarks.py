#!/usr/bin/env python
"""Run the benchmark suite and write a JSON perf baseline.

Executes ``pytest benchmarks --benchmark-only`` (optionally filtered with
``--select``, a pytest ``-k`` expression), collects per-benchmark wall-clock
statistics from pytest-benchmark's JSON output, augments them with machine
information, and writes the result to a compact baseline file (default
``BENCH_PR2.json``).  The committed baseline records the perf trajectory of
the repo; CI runs the micro-benchmarks non-blockingly and uploads the fresh
JSON as an artifact for comparison.

Usage:
    python scripts/run_benchmarks.py                         # full suite -> BENCH_PR3.json
    python scripts/run_benchmarks.py --select "micro or slot_engine"
    python scripts/run_benchmarks.py --tag PR4               # -> BENCH_PR4.json
    python scripts/run_benchmarks.py --output /tmp/bench.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# Tag of the baseline currently being grown; bump per perf-relevant PR.
DEFAULT_TAG = "PR3"


def machine_info() -> dict:
    """Machine fingerprint stored next to the timings."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "processor": platform.processor(),
        "cpu_count": os.cpu_count(),
    }


def run_benchmarks(select: str | None, raw_json: Path) -> int:
    """Run the pytest-benchmark suite, writing its raw JSON to ``raw_json``."""
    cmd = [
        sys.executable,
        "-m",
        "pytest",
        "benchmarks",
        "-q",
        "--benchmark-only",
        f"--benchmark-json={raw_json}",
    ]
    if select:
        cmd.extend(["-k", select])
    print("+", " ".join(cmd))
    return subprocess.call(cmd, cwd=REPO_ROOT)


def summarize(raw_json: Path) -> list[dict]:
    """Reduce pytest-benchmark's verbose JSON to per-benchmark wall-clocks."""
    data = json.loads(raw_json.read_text())
    rows = []
    for bench in data.get("benchmarks", []):
        stats = bench.get("stats", {})
        rows.append(
            {
                "name": bench.get("fullname", bench.get("name")),
                "mean_s": stats.get("mean"),
                "min_s": stats.get("min"),
                "max_s": stats.get("max"),
                "stddev_s": stats.get("stddev"),
                "rounds": stats.get("rounds"),
            }
        )
    rows.sort(key=lambda row: row["name"] or "")
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tag",
        default=None,
        help=f"baseline tag; writes BENCH_<TAG>.json at the repo root (default: {DEFAULT_TAG})",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="explicit baseline file to write (overrides --tag)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="pytest -k expression selecting a benchmark subset (e.g. 'micro')",
    )
    args = parser.parse_args(argv)
    # An explicit --tag is always honored in the JSON; otherwise the default
    # tag names the file, and a --output-only run stays untagged so tooling
    # comparing baselines by tag never conflates it with a curated baseline.
    if args.output is None:
        args.tag = args.tag or DEFAULT_TAG
        args.output = REPO_ROOT / f"BENCH_{args.tag}.json"

    with tempfile.TemporaryDirectory() as tmp:
        raw_json = Path(tmp) / "pytest-benchmark.json"
        exit_code = run_benchmarks(args.select, raw_json)
        if not raw_json.exists():
            print("benchmark run produced no JSON; aborting", file=sys.stderr)
            return exit_code or 1
        benchmarks = summarize(raw_json)

    baseline = {
        "generated_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "tag": args.tag,
        "select": args.select,
        "machine": machine_info(),
        "benchmarks": benchmarks,
    }
    args.output.write_text(json.dumps(baseline, indent=2) + "\n")
    print(f"wrote {len(benchmarks)} benchmark timings to {args.output}")
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
