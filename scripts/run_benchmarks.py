#!/usr/bin/env python
"""Run the benchmark suite and write a JSON perf baseline.

Executes ``pytest benchmarks --benchmark-only`` (optionally filtered with
``--select``, a pytest ``-k`` expression), collects per-benchmark wall-clock
statistics from pytest-benchmark's JSON output, augments them with machine
information, and writes the result to a compact baseline file (default
``BENCH_PR2.json``).  The committed baseline records the perf trajectory of
the repo; CI runs the micro-benchmarks non-blockingly and uploads the fresh
JSON as an artifact for comparison.

``--compare`` takes a prior baseline file, prints a per-benchmark delta
table (best-round wall-clock new vs old — minima, because on shared or
oversubscribed runners scheduler bursts only ever add time, so the fastest
round is the robust observation) and exits non-zero when any benchmark
regressed beyond ``--regression-threshold``; ``--compare-report`` writes the
rendered table to a file (CI uploads it as an artifact).

``--rounds``/``--warmup`` (defaults: 3 rounds after 1 warmup round) are
forwarded to the benchmark fixtures through the environment (see
``benchmarks/conftest.py``), so every ``benchmark.pedantic`` call times
multiple rounds and the recorded ``stddev_s`` is a real spread rather than
the 0.0 a single round always produces - which is what makes ``--compare``
deltas meaningful.  The actual per-benchmark round count lands in each
row's ``rounds`` field, straight from pytest-benchmark's stats.

``--repeat N`` (default 1) runs the whole suite N times and keeps, per
benchmark, the statistics of the run that achieved the fastest round -
best-of-N, the other half of the noise story: ``--rounds`` spreads one
benchmark's rounds over seconds, ``--repeat`` spreads its observations
over whole-suite minutes, so a multi-second scheduler burst on a shared
runner cannot contaminate every sample of any benchmark.  The exit code
is the best across repeats for the same reason (an in-benchmark floor
assertion that passes in any repeat demonstrably holds).

Usage:
    python scripts/run_benchmarks.py                         # full suite -> BENCH_PR5.json
    python scripts/run_benchmarks.py --select "micro or slot_engine"
    python scripts/run_benchmarks.py --tag PR6               # -> BENCH_PR6.json
    python scripts/run_benchmarks.py --output /tmp/bench.json
    python scripts/run_benchmarks.py --rounds 5 --warmup 2
    python scripts/run_benchmarks.py --repeat 3               # best-of-3 suite runs
    python scripts/run_benchmarks.py --compare BENCH_PR4.json --regression-threshold 1.3
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import resource
import subprocess
import sys
import tempfile
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.parallel import usable_cpu_count  # noqa: E402

# Tag of the baseline currently being grown; bump per perf-relevant PR.
DEFAULT_TAG = "PR10"


def peak_rss_bytes(who: int = resource.RUSAGE_SELF) -> int:
    """Peak resident set size in bytes (``ru_maxrss`` is KiB on Linux)."""
    rss = resource.getrusage(who).ru_maxrss
    return int(rss) * (1 if sys.platform == "darwin" else 1024)


def machine_info() -> dict:
    """Machine fingerprint stored next to the timings."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "processor": platform.processor(),
        "cpu_count": os.cpu_count(),
        "usable_cpu_count": usable_cpu_count(),
    }


def run_benchmarks(select: str | None, raw_json: Path, rounds: int, warmup: int) -> int:
    """Run the pytest-benchmark suite, writing its raw JSON to ``raw_json``.

    ``rounds``/``warmup`` reach the fixtures through the environment;
    ``benchmarks/conftest.py`` lifts every ``benchmark.pedantic`` call to at
    least that many timed/warmup rounds.
    """
    cmd = [
        sys.executable,
        "-m",
        "pytest",
        "benchmarks",
        "-q",
        "--benchmark-only",
        f"--benchmark-json={raw_json}",
    ]
    if select:
        cmd.extend(["-k", select])
    env = dict(os.environ)
    env["REPRO_BENCH_ROUNDS"] = str(rounds)
    env["REPRO_BENCH_WARMUP"] = str(warmup)
    print("+", " ".join(cmd), f"(rounds={rounds}, warmup={warmup})")
    return subprocess.call(cmd, cwd=REPO_ROOT, env=env)


def summarize(raw_json: Path) -> list[dict]:
    """Reduce pytest-benchmark's verbose JSON to per-benchmark wall-clocks."""
    data = json.loads(raw_json.read_text())
    rows = []
    for bench in data.get("benchmarks", []):
        stats = bench.get("stats", {})
        rows.append(
            {
                "name": bench.get("fullname", bench.get("name")),
                "mean_s": stats.get("mean"),
                "min_s": stats.get("min"),
                "max_s": stats.get("max"),
                "stddev_s": stats.get("stddev"),
                "rounds": stats.get("rounds"),
            }
        )
    rows.sort(key=lambda row: row["name"] or "")
    return rows


def merge_best(runs: list[list[dict]]) -> list[dict]:
    """Per-benchmark best-of-N merge: keep the row with the fastest round.

    Rows are matched by name across suite repeats; for each benchmark the
    whole stats row of the repeat that achieved the lowest ``min_s`` wins
    (falling back to ``mean_s`` when rounds were not recorded), so the
    merged baseline stays a set of internally consistent observations
    rather than a mix of statistics from different runs.
    """
    best: dict[str, dict] = {}
    for rows in runs:
        for row in rows:
            name = row.get("name") or ""
            incumbent = best.get(name)
            challenger_stat = _compare_stat(row)
            if incumbent is None or (
                challenger_stat is not None
                and (_compare_stat(incumbent) or float("inf")) > challenger_stat
            ):
                best[name] = row
    return sorted(best.values(), key=lambda row: row["name"] or "")


def _compare_stat(row: dict) -> float | None:
    """The wall-clock statistic ``--compare`` matches on: min, else mean.

    The per-round minimum is the noise-robust choice on shared or
    oversubscribed runners (scheduler bursts only ever *add* time, so the
    fastest round is the closest observation of the code's true cost);
    older baselines without ``min_s`` fall back to ``mean_s``.
    """
    stat = row.get("min_s")
    return stat if stat is not None else row.get("mean_s")


def compare_baselines(
    old: dict, new: dict, threshold: float
) -> tuple[str, list[str]]:
    """Delta table between two baseline dicts, plus the regressions found.

    Benchmarks are matched by name; a positive delta means the new run is
    slower.  A benchmark regresses when its best (minimum) round exceeds
    ``threshold`` times the old baseline's best round — see
    :func:`_compare_stat` for why minima rather than means.  Entries
    present on only one side are listed but never count as regressions
    (they are additions/removals, not slowdowns).
    """
    old_by_name = {row["name"]: row for row in old.get("benchmarks", [])}
    new_by_name = {row["name"]: row for row in new.get("benchmarks", [])}
    names = sorted(set(old_by_name) | set(new_by_name))
    width = max((len(name) for name in names), default=4)
    old_tag = old.get("tag") or "old"
    lines = [
        f"benchmark deltas vs {old_tag} (best round, threshold: {threshold:.2f}x)",
        f"{'name'.ljust(width)}  {'old best':>12}  {'new best':>12}  {'delta':>8}",
    ]
    regressions: list[str] = []
    for name in names:
        old_row = old_by_name.get(name) or {}
        new_row = new_by_name.get(name) or {}
        old_best = _compare_stat(old_row)
        new_best = _compare_stat(new_row)
        if old_best is None and new_best is None:
            lines.append(f"{name.ljust(width)}  {'-':>12}  {'-':>12}  {'-':>8}")
            continue
        if old_best is None:
            lines.append(f"{name.ljust(width)}  {'-':>12}  {new_best:>12.6f}  {'NEW':>8}")
            continue
        if new_best is None:
            lines.append(f"{name.ljust(width)}  {old_best:>12.6f}  {'-':>12}  {'GONE':>8}")
            continue
        delta = (new_best / old_best - 1.0) * 100.0 if old_best else float("inf")
        marker = ""
        if old_best and new_best > threshold * old_best:
            marker = "  REGRESSED"
            regressions.append(name)
        lines.append(
            f"{name.ljust(width)}  {old_best:>12.6f}  {new_best:>12.6f}  {delta:>+7.1f}%{marker}"
        )
    return "\n".join(lines), regressions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tag",
        default=None,
        help=f"baseline tag; writes BENCH_<TAG>.json at the repo root (default: {DEFAULT_TAG})",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="explicit baseline file to write (overrides --tag)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="pytest -k expression selecting a benchmark subset (e.g. 'micro')",
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=3,
        help="timed rounds per benchmark (default: 3; makes stddev_s a real "
        "spread instead of the 0.0 a single round records)",
    )
    parser.add_argument(
        "--warmup",
        type=int,
        default=1,
        help="untimed warmup rounds per benchmark before timing (default: 1)",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="whole-suite repeats merged best-of-N per benchmark (default: "
        "1; use 2-3 on shared/noisy runners so one scheduler burst cannot "
        "contaminate every observation of a benchmark)",
    )
    parser.add_argument(
        "--compare",
        type=Path,
        default=None,
        help="prior baseline JSON to diff against; prints a per-benchmark "
        "delta table and exits non-zero on regressions beyond the threshold",
    )
    parser.add_argument(
        "--regression-threshold",
        type=float,
        default=1.5,
        help="best-round wall-clock ratio above which --compare reports a "
        "regression (default: 1.5, i.e. 50%% slower)",
    )
    parser.add_argument(
        "--compare-report",
        type=Path,
        default=None,
        help="also write the --compare delta table to this file",
    )
    args = parser.parse_args(argv)
    if args.regression_threshold <= 0:
        parser.error("--regression-threshold must be positive")
    if args.rounds < 1:
        parser.error("--rounds must be at least 1")
    if args.warmup < 0:
        parser.error("--warmup must be non-negative")
    if args.repeat < 1:
        parser.error("--repeat must be at least 1")
    # Load the prior baseline up front: the default output file may be the
    # very baseline being compared against (e.g. `--compare BENCH_PR4.json`
    # with no --output), and the comparison must see its pre-run contents.
    prior = None
    if args.compare is not None:
        try:
            prior = json.loads(args.compare.read_text())
        except OSError as exc:
            parser.error(f"cannot read --compare baseline: {exc}")
    # An explicit --tag is always honored in the JSON; otherwise the default
    # tag names the file, and a --output-only run stays untagged so tooling
    # comparing baselines by tag never conflates it with a curated baseline.
    if args.output is None:
        args.tag = args.tag or DEFAULT_TAG
        args.output = REPO_ROOT / f"BENCH_{args.tag}.json"

    with tempfile.TemporaryDirectory() as tmp:
        runs: list[list[dict]] = []
        exit_codes: list[int] = []
        for attempt in range(args.repeat):
            raw_json = Path(tmp) / f"pytest-benchmark-{attempt}.json"
            exit_codes.append(
                run_benchmarks(args.select, raw_json, args.rounds, args.warmup)
            )
            if raw_json.exists():
                runs.append(summarize(raw_json))
        # Every pytest child has been waited on, so RUSAGE_CHILDREN now
        # carries their high-water mark - the memory claim behind the
        # n>=50k tiled runs lands in the baseline JSON next to the
        # wall-clocks.
        child_peak_rss = peak_rss_bytes(resource.RUSAGE_CHILDREN)
        # Best exit code across repeats, matching the best-of-N timings: a
        # floor assertion that passes in any repeat demonstrably holds.
        exit_code = min(exit_codes)
        if not runs:
            print("benchmark run produced no JSON; aborting", file=sys.stderr)
            return exit_code or 1
        benchmarks = merge_best(runs)

    baseline = {
        "generated_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "tag": args.tag,
        "select": args.select,
        "rounds": args.rounds,
        "warmup": args.warmup,
        "repeat": args.repeat,
        "machine": machine_info(),
        "peak_rss_bytes": child_peak_rss,
        "benchmarks": benchmarks,
    }
    args.output.write_text(json.dumps(baseline, indent=2) + "\n")
    print(f"wrote {len(benchmarks)} benchmark timings to {args.output}")

    if prior is not None:
        table, regressions = compare_baselines(
            prior, baseline, args.regression_threshold
        )
        print()
        print(table)
        if args.compare_report is not None:
            args.compare_report.write_text(table + "\n")
            print(f"wrote delta table to {args.compare_report}")
        if regressions:
            print(
                f"{len(regressions)} benchmark(s) regressed beyond "
                f"{args.regression_threshold:.2f}x: {', '.join(regressions)}",
                file=sys.stderr,
            )
            return exit_code or 2
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
