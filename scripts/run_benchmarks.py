#!/usr/bin/env python
"""Run the benchmark suite and write a JSON perf baseline.

Executes ``pytest benchmarks --benchmark-only`` (optionally filtered with
``--select``, a pytest ``-k`` expression), collects per-benchmark wall-clock
statistics from pytest-benchmark's JSON output, augments them with machine
information, and writes the result to a compact baseline file (default
``BENCH_PR2.json``).  The committed baseline records the perf trajectory of
the repo; CI runs the micro-benchmarks non-blockingly and uploads the fresh
JSON as an artifact for comparison.

``--compare`` takes a prior baseline file, prints a per-benchmark delta
table (mean wall-clock new vs old) and exits non-zero when any benchmark
regressed beyond ``--regression-threshold``; ``--compare-report`` writes the
rendered table to a file (CI uploads it as an artifact).

``--rounds``/``--warmup`` (defaults: 3 rounds after 1 warmup round) are
forwarded to the benchmark fixtures through the environment (see
``benchmarks/conftest.py``), so every ``benchmark.pedantic`` call times
multiple rounds and the recorded ``stddev_s`` is a real spread rather than
the 0.0 a single round always produces - which is what makes ``--compare``
deltas meaningful.  The actual per-benchmark round count lands in each
row's ``rounds`` field, straight from pytest-benchmark's stats.

Usage:
    python scripts/run_benchmarks.py                         # full suite -> BENCH_PR5.json
    python scripts/run_benchmarks.py --select "micro or slot_engine"
    python scripts/run_benchmarks.py --tag PR6               # -> BENCH_PR6.json
    python scripts/run_benchmarks.py --output /tmp/bench.json
    python scripts/run_benchmarks.py --rounds 5 --warmup 2
    python scripts/run_benchmarks.py --compare BENCH_PR4.json --regression-threshold 1.3
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.parallel import usable_cpu_count  # noqa: E402

# Tag of the baseline currently being grown; bump per perf-relevant PR.
DEFAULT_TAG = "PR8"


def machine_info() -> dict:
    """Machine fingerprint stored next to the timings."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "processor": platform.processor(),
        "cpu_count": os.cpu_count(),
        "usable_cpu_count": usable_cpu_count(),
    }


def run_benchmarks(select: str | None, raw_json: Path, rounds: int, warmup: int) -> int:
    """Run the pytest-benchmark suite, writing its raw JSON to ``raw_json``.

    ``rounds``/``warmup`` reach the fixtures through the environment;
    ``benchmarks/conftest.py`` lifts every ``benchmark.pedantic`` call to at
    least that many timed/warmup rounds.
    """
    cmd = [
        sys.executable,
        "-m",
        "pytest",
        "benchmarks",
        "-q",
        "--benchmark-only",
        f"--benchmark-json={raw_json}",
    ]
    if select:
        cmd.extend(["-k", select])
    env = dict(os.environ)
    env["REPRO_BENCH_ROUNDS"] = str(rounds)
    env["REPRO_BENCH_WARMUP"] = str(warmup)
    print("+", " ".join(cmd), f"(rounds={rounds}, warmup={warmup})")
    return subprocess.call(cmd, cwd=REPO_ROOT, env=env)


def summarize(raw_json: Path) -> list[dict]:
    """Reduce pytest-benchmark's verbose JSON to per-benchmark wall-clocks."""
    data = json.loads(raw_json.read_text())
    rows = []
    for bench in data.get("benchmarks", []):
        stats = bench.get("stats", {})
        rows.append(
            {
                "name": bench.get("fullname", bench.get("name")),
                "mean_s": stats.get("mean"),
                "min_s": stats.get("min"),
                "max_s": stats.get("max"),
                "stddev_s": stats.get("stddev"),
                "rounds": stats.get("rounds"),
            }
        )
    rows.sort(key=lambda row: row["name"] or "")
    return rows


def compare_baselines(
    old: dict, new: dict, threshold: float
) -> tuple[str, list[str]]:
    """Delta table between two baseline dicts, plus the regressions found.

    Benchmarks are matched by name; a positive delta means the new run is
    slower.  A benchmark regresses when ``new_mean > threshold * old_mean``.
    Entries present on only one side are listed but never count as
    regressions (they are additions/removals, not slowdowns).
    """
    old_by_name = {row["name"]: row for row in old.get("benchmarks", [])}
    new_by_name = {row["name"]: row for row in new.get("benchmarks", [])}
    names = sorted(set(old_by_name) | set(new_by_name))
    width = max((len(name) for name in names), default=4)
    old_tag = old.get("tag") or "old"
    lines = [
        f"benchmark deltas vs {old_tag} (threshold: {threshold:.2f}x)",
        f"{'name'.ljust(width)}  {'old mean':>12}  {'new mean':>12}  {'delta':>8}",
    ]
    regressions: list[str] = []
    for name in names:
        old_row = old_by_name.get(name) or {}
        new_row = new_by_name.get(name) or {}
        old_mean = old_row.get("mean_s")
        new_mean = new_row.get("mean_s")
        if old_mean is None and new_mean is None:
            lines.append(f"{name.ljust(width)}  {'-':>12}  {'-':>12}  {'-':>8}")
            continue
        if old_mean is None:
            lines.append(f"{name.ljust(width)}  {'-':>12}  {new_mean:>12.6f}  {'NEW':>8}")
            continue
        if new_mean is None:
            lines.append(f"{name.ljust(width)}  {old_mean:>12.6f}  {'-':>12}  {'GONE':>8}")
            continue
        delta = (new_mean / old_mean - 1.0) * 100.0 if old_mean else float("inf")
        marker = ""
        if old_mean and new_mean > threshold * old_mean:
            marker = "  REGRESSED"
            regressions.append(name)
        lines.append(
            f"{name.ljust(width)}  {old_mean:>12.6f}  {new_mean:>12.6f}  {delta:>+7.1f}%{marker}"
        )
    return "\n".join(lines), regressions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tag",
        default=None,
        help=f"baseline tag; writes BENCH_<TAG>.json at the repo root (default: {DEFAULT_TAG})",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="explicit baseline file to write (overrides --tag)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="pytest -k expression selecting a benchmark subset (e.g. 'micro')",
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=3,
        help="timed rounds per benchmark (default: 3; makes stddev_s a real "
        "spread instead of the 0.0 a single round records)",
    )
    parser.add_argument(
        "--warmup",
        type=int,
        default=1,
        help="untimed warmup rounds per benchmark before timing (default: 1)",
    )
    parser.add_argument(
        "--compare",
        type=Path,
        default=None,
        help="prior baseline JSON to diff against; prints a per-benchmark "
        "delta table and exits non-zero on regressions beyond the threshold",
    )
    parser.add_argument(
        "--regression-threshold",
        type=float,
        default=1.5,
        help="mean-wall-clock ratio above which --compare reports a "
        "regression (default: 1.5, i.e. 50%% slower)",
    )
    parser.add_argument(
        "--compare-report",
        type=Path,
        default=None,
        help="also write the --compare delta table to this file",
    )
    args = parser.parse_args(argv)
    if args.regression_threshold <= 0:
        parser.error("--regression-threshold must be positive")
    if args.rounds < 1:
        parser.error("--rounds must be at least 1")
    if args.warmup < 0:
        parser.error("--warmup must be non-negative")
    # Load the prior baseline up front: the default output file may be the
    # very baseline being compared against (e.g. `--compare BENCH_PR4.json`
    # with no --output), and the comparison must see its pre-run contents.
    prior = None
    if args.compare is not None:
        try:
            prior = json.loads(args.compare.read_text())
        except OSError as exc:
            parser.error(f"cannot read --compare baseline: {exc}")
    # An explicit --tag is always honored in the JSON; otherwise the default
    # tag names the file, and a --output-only run stays untagged so tooling
    # comparing baselines by tag never conflates it with a curated baseline.
    if args.output is None:
        args.tag = args.tag or DEFAULT_TAG
        args.output = REPO_ROOT / f"BENCH_{args.tag}.json"

    with tempfile.TemporaryDirectory() as tmp:
        raw_json = Path(tmp) / "pytest-benchmark.json"
        exit_code = run_benchmarks(args.select, raw_json, args.rounds, args.warmup)
        if not raw_json.exists():
            print("benchmark run produced no JSON; aborting", file=sys.stderr)
            return exit_code or 1
        benchmarks = summarize(raw_json)

    baseline = {
        "generated_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "tag": args.tag,
        "select": args.select,
        "rounds": args.rounds,
        "warmup": args.warmup,
        "machine": machine_info(),
        "benchmarks": benchmarks,
    }
    args.output.write_text(json.dumps(baseline, indent=2) + "\n")
    print(f"wrote {len(benchmarks)} benchmark timings to {args.output}")

    if prior is not None:
        table, regressions = compare_baselines(
            prior, baseline, args.regression_threshold
        )
        print()
        print(table)
        if args.compare_report is not None:
            args.compare_report.write_text(table + "\n")
            print(f"wrote delta table to {args.compare_report}")
        if regressions:
            print(
                f"{len(regressions)} benchmark(s) regressed beyond "
                f"{args.regression_threshold:.2f}x: {', '.join(regressions)}",
                file=sys.stderr,
            )
            return exit_code or 2
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
