#!/usr/bin/env python
"""Profile one experiment's hot paths: cProfile + top allocation sites.

Runs a single E/F experiment (default: E1 at the quick config, sequential)
under ``cProfile`` and, in a second pass, under ``tracemalloc``, then prints

* the top functions by cumulative and by internal time, and
* the top source lines by bytes allocated,

so the next performance PR can see at a glance where the slots - and the
allocator - are actually spent.  Allocation hot spots are the scratch-arena
layer's prey: a line that shows up here with per-slot granularity is a
candidate for a ``DecodeWorkspace`` buffer.

Usage:
    python scripts/profile_hotpaths.py                  # E1, quick config
    python scripts/profile_hotpaths.py --experiment e9
    python scripts/profile_hotpaths.py --experiment e10 --top 25
    python scripts/profile_hotpaths.py --full           # full-size sweep
"""

from __future__ import annotations

import argparse
import cProfile
import importlib
import io
import pstats
import sys
import tracemalloc
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

EXPERIMENTS = (
    "e1_init",
    "e2_degree",
    "e3_sparsity",
    "e4_reschedule",
    "e5_tvc_arbitrary",
    "e6_tvc_mean",
    "e7_tm_subset",
    "e8_latency",
    "e9_capacity",
    "e10_fading",
    "e11_mobility",
    "e12_churn",
    "f1_comparison",
    "f2_delta",
    "f3_uniform_lower_bound",
)


def resolve_runner(name: str):
    """The experiment module's ``run`` callable, by short or full name."""
    matches = [exp for exp in EXPERIMENTS if exp == name or exp.split("_")[0] == name]
    if len(matches) != 1:
        raise SystemExit(
            f"unknown experiment {name!r}; pick one of "
            + ", ".join(exp.split("_")[0] for exp in EXPERIMENTS)
        )
    module = importlib.import_module(f"repro.experiments.{matches[0]}")
    return module.run


def profile_time(run, config, top: int) -> None:
    """cProfile pass: cumulative and internal-time leaders."""
    profiler = cProfile.Profile()
    profiler.enable()
    result = run(config)
    profiler.disable()
    print(f"== {result.experiment_id}: {result.title}")
    print(f"   rows: {len(result.rows)}, summary: {result.summary}")
    for sort_key, title in (("cumulative", "cumulative time"), ("tottime", "internal time")):
        stream = io.StringIO()
        stats = pstats.Stats(profiler, stream=stream)
        stats.strip_dirs().sort_stats(sort_key).print_stats(top)
        print(f"\n-- top {top} by {title} " + "-" * 40)
        print(stream.getvalue())


def profile_allocations(run, config, top: int) -> None:
    """tracemalloc pass: source lines by bytes allocated."""
    tracemalloc.start(25)
    run(config)
    snapshot = tracemalloc.take_snapshot()
    tracemalloc.stop()
    print(f"\n-- top {top} allocation sites (bytes allocated over the run) " + "-" * 12)
    for stat in snapshot.statistics("lineno")[:top]:
        frame = stat.traceback[0]
        location = f"{frame.filename}:{frame.lineno}"
        # Keep repo paths readable; stdlib/numpy frames stay absolute.
        location = location.replace(str(REPO_ROOT) + "/", "")
        print(f"{stat.size / 1024:10.1f} KiB  {stat.count:8d} blocks  {location}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--experiment",
        default="e1",
        help="experiment to profile, by short name (e1..e12, f1..f3); default e1",
    )
    parser.add_argument(
        "--top", type=int, default=15, help="rows per report section (default 15)"
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="profile the full-size sweep instead of the quick config",
    )
    args = parser.parse_args(argv)

    from repro.experiments import ExperimentConfig

    run = resolve_runner(args.experiment)
    config = ExperimentConfig.full() if args.full else ExperimentConfig.quick()
    profile_time(run, config, args.top)
    profile_allocations(run, config, args.top)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
