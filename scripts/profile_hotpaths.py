#!/usr/bin/env python
"""Profile one experiment's hot paths: cProfile + top allocation sites.

Runs any registered experiment (default: E1 at the quick config, sequential)
under ``cProfile`` and, in a second pass, under ``tracemalloc``, then prints

* the top functions by cumulative and by internal time, and
* the top source lines by bytes allocated,

so the next performance PR can see at a glance where the slots - and the
allocator - are actually spent.  Allocation hot spots are the scratch-arena
layer's prey: a line that shows up here with per-slot granularity is a
candidate for a ``DecodeWorkspace`` buffer.  The tracemalloc view is shared
with ``python -m repro.obs report --allocs`` via
:func:`repro.obs.profiling.top_allocations`.

Usage:
    python scripts/profile_hotpaths.py                  # E1, quick config
    python scripts/profile_hotpaths.py --experiment e13
    python scripts/profile_hotpaths.py --experiment E10 --top 25
    python scripts/profile_hotpaths.py --full           # full-size sweep
    python scripts/profile_hotpaths.py --json           # machine-readable
"""

from __future__ import annotations

import argparse
import cProfile
import io
import json
import pstats
import resource
import sys
from pathlib import Path
from typing import Any

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))


def resolve_runner(name: str):
    """The experiment's ``run`` callable, by registry id (case-insensitive)."""
    from repro.experiments import ALL_EXPERIMENTS

    runner = ALL_EXPERIMENTS.get(name.upper())
    if runner is None:
        raise SystemExit(
            f"unknown experiment {name!r}; pick one of " + ", ".join(ALL_EXPERIMENTS)
        )
    return runner


def profile_time(run, config, top: int) -> dict[str, Any]:
    """cProfile pass: cumulative and internal-time leaders."""
    profiler = cProfile.Profile()
    profiler.enable()
    result = run(config)
    profiler.disable()
    report: dict[str, Any] = {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "rows": len(result.rows),
        "summary": {key: str(value) for key, value in result.summary.items()},
        "profiles": {},
    }
    for sort_key in ("cumulative", "tottime"):
        stream = io.StringIO()
        stats = pstats.Stats(profiler, stream=stream)
        stats.strip_dirs().sort_stats(sort_key).print_stats(top)
        report["profiles"][sort_key] = stream.getvalue()
    return report


def profile_allocations(run, config, top: int) -> list[dict[str, Any]]:
    """tracemalloc pass: source lines by bytes allocated (shared helper)."""
    from repro.obs.profiling import top_allocations

    _, rows = top_allocations(
        lambda: run(config), top=top, strip_prefix=str(REPO_ROOT)
    )
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--experiment",
        default="e1",
        help="registered experiment id (E1..E13, F1..F3, case-insensitive); default e1",
    )
    parser.add_argument(
        "--top", type=int, default=15, help="rows per report section (default 15)"
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="profile the full-size sweep instead of the quick config",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit one JSON object (profiles + allocation rows) instead of text",
    )
    args = parser.parse_args(argv)

    from repro.experiments import ExperimentConfig

    run = resolve_runner(args.experiment)
    config = ExperimentConfig.full() if args.full else ExperimentConfig.quick()
    report = profile_time(run, config, args.top)
    report["allocations"] = profile_allocations(run, config, args.top)
    # Peak RSS of this process after both passes (ru_maxrss is KiB on Linux):
    # the memory half of a perf claim, next to where the time is spent.
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    report["peak_rss_bytes"] = int(rss) * (1 if sys.platform == "darwin" else 1024)

    if args.json:
        print(json.dumps(report, indent=2))
        return 0

    print(f"== {report['experiment_id']}: {report['title']}")
    print(f"   rows: {report['rows']}, summary: {report['summary']}")
    print(f"   peak RSS: {report['peak_rss_bytes'] / 1e6:.1f} MB")
    for sort_key, title in (("cumulative", "cumulative time"), ("tottime", "internal time")):
        print(f"\n-- top {args.top} by {title} " + "-" * 40)
        print(report["profiles"][sort_key])
    print(f"\n-- top {args.top} allocation sites (bytes allocated over the run) " + "-" * 12)
    for row in report["allocations"]:
        print(f"{row['kib']:10.1f} KiB  {row['blocks']:8d} blocks  {row['location']}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
