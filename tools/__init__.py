"""Repository tooling (static analysis, maintenance scripts).

Not part of the installable ``repro`` package; imported from the repo root
(the test-suite ``conftest.py`` puts the repo root on ``sys.path``).
"""
