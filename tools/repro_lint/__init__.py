"""repro-lint: AST-based invariant checker for the repro codebase.

The hot paths of this repository rest on a handful of contracts that plain
unit tests enforce only incidentally:

* decode kernels write into preallocated :class:`~repro.state.DecodeWorkspace`
  arenas and must not allocate per call (``RL001``),
* ``out=`` destinations must not alias a read operand (``RL002``),
* randomness is drawn from argument-seeded generators or counter hashes,
  never from hidden global state (``RL003``),
* worker processes treat shared :class:`~repro.state.NetworkState` objects as
  read-only, and every mutating method routes through ``_check_mutable``
  (``RL004``),
* every public hot kernel is pinned bit-for-bit against a reference oracle by
  at least one test (``RL005``).

``repro-lint`` checks those contracts at the AST level, so a violation fails
CI when it is written, not three PRs later as a heisenbug in a worker
process.  Rules are plugins (see :mod:`tools.repro_lint.rules`); findings can
be suppressed inline with ``# repro-lint: disable=RL001`` (comma-separated
codes, or ``all``) or grandfathered in a committed baseline file.

Usage::

    python -m tools.repro_lint src/ benchmarks/ scripts/
    python -m tools.repro_lint --format json src/

The kernel registry the allocation and parity rules key off lives in
:mod:`repro.contracts`: decorating a function with ``@hot_kernel(...)``
opts it into ``RL001``/``RL005`` both at runtime and — via static decorator
detection, no imports — in this linter.
"""

from __future__ import annotations

from .engine import Finding, LintResult, Module, Project, lint_paths, lint_source

__all__ = [
    "Finding",
    "LintResult",
    "Module",
    "Project",
    "lint_paths",
    "lint_source",
]
