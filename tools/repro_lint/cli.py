"""Command-line interface: ``python -m tools.repro_lint [paths...]``.

Exit status is 0 when no *error*-severity findings survive suppression and
baseline filtering; warnings are reported but never gate.  ``--write-baseline``
records the current error fingerprints so a gate can be introduced on an
imperfect tree — this repo's policy (see ISSUE 6) is that the committed
baseline stays empty except for deliberate, commented exceptions.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from .engine import lint_paths
from .reporters import render_json, render_text

__all__ = ["main"]

_DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.txt"


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.repro_lint",
        description="AST-based invariant checker for the repro codebase.",
    )
    parser.add_argument("paths", nargs="+", help="files or directories to lint")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=_DEFAULT_BASELINE,
        help="baseline file of grandfathered finding fingerprints",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="append current unsuppressed error fingerprints to the baseline and exit 0",
    )
    parser.add_argument(
        "--tests", type=Path, default=Path("tests"),
        help="test corpus scanned by the parity-coverage rule (default: tests/)",
    )
    args = parser.parse_args(argv)

    tests_dir = args.tests if args.tests.exists() else None
    result = lint_paths(args.paths, tests_dir=tests_dir, baseline_path=args.baseline)

    if args.write_baseline:
        existing = args.baseline.read_text(encoding="utf-8") if args.baseline.exists() else ""
        with args.baseline.open("a", encoding="utf-8") as handle:
            if existing and not existing.endswith("\n"):
                handle.write("\n")
            for finding in result.errors:
                handle.write(f"{finding.fingerprint}\n")
        print(f"repro-lint: wrote {len(result.errors)} fingerprint(s) to {args.baseline}")
        return 0

    report = render_json(result) if args.fmt == "json" else render_text(result)
    print(report)
    return result.exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
