"""Core engine of repro-lint: modules, findings, suppression and baseline.

The engine is deliberately dependency-free (stdlib ``ast`` only) and never
imports the code under analysis — kernels registered with
``@hot_kernel(...)`` are recognised *syntactically* from their decorators, so
the linter works on broken or import-cycling trees and in pre-commit hooks.
"""

from __future__ import annotations

import ast
import hashlib
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

__all__ = [
    "Finding",
    "KernelInfo",
    "LintResult",
    "Module",
    "Project",
    "lint_paths",
    "lint_source",
]

#: Inline suppression syntax: ``# repro-lint: disable=RL001,RL004`` (or ``all``).
_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+)")

#: Decorator names that register a function as a hot kernel (see
#: ``repro.contracts.hot_kernel``).
_KERNEL_DECORATOR = "hot_kernel"


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a file location."""

    code: str
    message: str
    path: str
    line: int
    end_line: int
    severity: str = "error"  # "error" | "warning"
    symbol: str = ""  # enclosing function/class qualname, if any

    @property
    def fingerprint(self) -> str:
        """Location-insensitive identity used by the baseline file.

        Line numbers are deliberately excluded so baselined findings survive
        unrelated edits above them; the (code, path, symbol, message) tuple
        pins them tightly enough in practice.
        """
        digest = hashlib.sha1(self.message.encode("utf-8")).hexdigest()[:12]
        return f"{self.code}:{self.path}:{self.symbol or '<module>'}:{digest}"

    def as_dict(self) -> dict[str, object]:
        return {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "end_line": self.end_line,
            "severity": self.severity,
            "symbol": self.symbol,
            "fingerprint": self.fingerprint,
        }


@dataclass(frozen=True)
class KernelInfo:
    """A function statically registered as a hot kernel via ``@hot_kernel``."""

    node: ast.FunctionDef
    qualname: str
    oracle: str | None
    allocates: bool


class Module:
    """One parsed source file plus its suppressions and kernel registrations."""

    def __init__(self, path: str, source: str) -> None:
        self.path = path
        self.source = source
        self.tree = ast.parse(source, filename=path)
        self.lines = source.splitlines()
        #: line number -> set of suppressed codes ("all" suppresses everything)
        self.suppressions: dict[int, set[str]] = {}
        for lineno, text in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(text)
            if match:
                codes = {part.strip().upper() if part.strip() != "all" else "all"
                         for part in match.group(1).split(",") if part.strip()}
                self.suppressions[lineno] = codes
        self.kernels: list[KernelInfo] = list(_collect_kernels(self.tree))
        #: Name ids and attribute names appearing anywhere in the module; the
        #: parity rule (RL005) uses this as a cheap "references X" predicate.
        self.identifiers: set[str] = set()
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Name):
                self.identifiers.add(node.id)
            elif isinstance(node, ast.Attribute):
                self.identifiers.add(node.attr)

    @property
    def is_src(self) -> bool:
        """True for library modules (style rules only apply to these)."""
        parts = Path(self.path).parts
        return not ({"scripts", "benchmarks", "tests", "examples"} & set(parts))

    def is_suppressed(self, finding: Finding) -> bool:
        last = min(finding.end_line, finding.line + 200)
        for lineno in range(finding.line, last + 1):
            codes = self.suppressions.get(lineno)
            if codes and ("all" in codes or finding.code in codes):
                return True
        return False


def _decorator_parts(node: ast.expr) -> tuple[str, ...]:
    """Dotted-name parts of a decorator expression (empty if not a name)."""
    target = node.func if isinstance(node, ast.Call) else node
    parts: list[str] = []
    while isinstance(target, ast.Attribute):
        parts.append(target.attr)
        target = target.value
    if isinstance(target, ast.Name):
        parts.append(target.id)
    return tuple(reversed(parts))


def _collect_kernels(tree: ast.Module) -> Iterator[KernelInfo]:
    """Find every function decorated with ``@hot_kernel(...)``, statically."""

    def visit(node: ast.AST, prefix: str) -> Iterator[KernelInfo]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                for deco in child.decorator_list:
                    parts = _decorator_parts(deco)
                    if parts and parts[-1] == _KERNEL_DECORATOR:
                        oracle: str | None = None
                        allocates = False
                        if isinstance(deco, ast.Call):
                            for kw in deco.keywords:
                                if kw.arg == "oracle" and isinstance(kw.value, ast.Constant):
                                    oracle = kw.value.value
                                elif kw.arg == "allocates" and isinstance(kw.value, ast.Constant):
                                    allocates = bool(kw.value.value)
                        if isinstance(child, ast.FunctionDef):
                            yield KernelInfo(child, qualname, oracle, allocates)
                        break
                yield from visit(child, f"{qualname}.")
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, f"{prefix}{child.name}.")

    yield from visit(tree, "")


class Project:
    """Everything a rule may need: the linted modules plus the test corpus."""

    def __init__(self, modules: Sequence[Module], tests: Sequence[Module] = ()) -> None:
        self.modules = list(modules)
        self.tests = list(tests)

    @property
    def kernels(self) -> list[tuple[Module, KernelInfo]]:
        return [(mod, kernel) for mod in self.modules for kernel in mod.kernels]


@dataclass
class LintResult:
    """Outcome of a lint run, after suppression and baseline filtering."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    baselined: int = 0
    files: int = 0

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "warning"]

    @property
    def exit_code(self) -> int:
        return 1 if self.errors else 0


def _iter_py_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def load_baseline(path: Path | None) -> set[str]:
    """Read a baseline file: one fingerprint per line, ``#`` comments allowed."""
    if path is None or not path.exists():
        return set()
    fingerprints: set[str] = set()
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            fingerprints.add(line)
    return fingerprints


def _run_rules(project: Project, rules: Sequence[object]) -> list[tuple[Module | None, Finding]]:
    raw: list[tuple[Module | None, Finding]] = []
    for rule in rules:
        for module in project.modules:
            raw.extend((module, finding) for finding in rule.check(module))
        finalize = getattr(rule, "finalize", None)
        if finalize is not None:
            for finding in finalize(project):
                owner = next((m for m in project.modules if m.path == finding.path), None)
                raw.append((owner, finding))
    return raw


def _filter(
    raw: list[tuple[Module | None, Finding]],
    baseline: set[str],
    files: int,
) -> LintResult:
    result = LintResult(files=files)
    for module, finding in raw:
        if module is not None and module.is_suppressed(finding):
            result.suppressed += 1
        elif finding.fingerprint in baseline:
            result.baselined += 1
        else:
            result.findings.append(finding)
    result.findings.sort(key=lambda f: (f.path, f.line, f.code))
    return result


def _default_rules() -> list[object]:
    from .rules import all_rules

    return all_rules()


def lint_paths(
    paths: Sequence[str | Path],
    *,
    tests_dir: str | Path | None = "tests",
    baseline_path: Path | None = None,
    rules: Sequence[object] | None = None,
) -> LintResult:
    """Lint files/directories on disk; the main entry point behind the CLI."""
    modules: list[Module] = []
    for file_path in _iter_py_files(paths):
        try:
            source = file_path.read_text(encoding="utf-8")
            modules.append(Module(str(file_path), source))
        except (SyntaxError, UnicodeDecodeError) as err:
            modules_finding = Finding(
                code="RL000",
                message=f"could not parse file: {err}",
                path=str(file_path),
                line=getattr(err, "lineno", 1) or 1,
                end_line=getattr(err, "lineno", 1) or 1,
            )
            return LintResult(findings=[modules_finding], files=1)
    tests: list[Module] = []
    if tests_dir is not None:
        for file_path in _iter_py_files([tests_dir]):
            try:
                tests.append(Module(str(file_path), file_path.read_text(encoding="utf-8")))
            except (SyntaxError, UnicodeDecodeError):  # pragma: no cover - defensive
                continue
    project = Project(modules, tests)
    raw = _run_rules(project, list(rules) if rules is not None else _default_rules())
    return _filter(raw, load_baseline(baseline_path), files=len(modules))


def lint_source(
    source: str,
    *,
    filename: str = "src/fixture.py",
    test_sources: dict[str, str] | None = None,
    rules: Sequence[object] | None = None,
) -> list[Finding]:
    """Lint an in-memory snippet; the fixture-test entry point.

    ``filename`` participates in path-sensitive rules (style rules only fire
    for src-like paths), and ``test_sources`` populates the test corpus the
    parity rule scans.
    """
    module = Module(filename, source)
    tests = [Module(name, text) for name, text in (test_sources or {}).items()]
    project = Project([module], tests)
    raw = _run_rules(project, list(rules) if rules is not None else _default_rules())
    return _filter(raw, set(), files=1).findings
