"""Rule plugins for repro-lint.

Each rule is a class with a unique ``code`` (``RL###``), a per-module
``check(module)`` hook, and an optional project-wide ``finalize(project)``
hook (used by cross-file rules such as the parity-coverage check).  Adding a
rule means adding a class here and listing it in :func:`all_rules` — the
engine, CLI, reporters and suppression machinery pick it up unchanged.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine import Finding, Module, Project

__all__ = ["Rule", "all_rules"]


class Rule:
    """Base class: a no-op rule with a code and an error severity."""

    code = "RL000"
    name = "base"
    severity = "error"

    def check(self, module: "Module") -> Iterable["Finding"]:
        return ()

    def finalize(self, project: "Project") -> Iterable["Finding"]:
        return ()


def all_rules() -> list[Rule]:
    """Instantiate every registered rule, in code order."""
    from .alloc import NoAllocInHotKernel
    from .aliasing import OutAliasing
    from .rng import RngDiscipline
    from .shared_state import SharedStateMutation
    from .parity import ParityOracleCoverage
    from .waits import UnboundedWait
    from .obs_guard import ObsGuardInHotKernel
    from .hygiene import (
        BareExcept,
        MissingDunderAll,
        MutableDefaultArg,
        SlotsOrDataclass,
    )

    return [
        NoAllocInHotKernel(),
        OutAliasing(),
        RngDiscipline(),
        SharedStateMutation(),
        ParityOracleCoverage(),
        SlotsOrDataclass(),
        MissingDunderAll(),
        MutableDefaultArg(),
        BareExcept(),
        UnboundedWait(),
        ObsGuardInHotKernel(),
    ]
