"""RL001 — no allocation inside a registered hot kernel.

The decode kernels behind :class:`~repro.state.DecodeWorkspace` promise
*zero allocations at steady state*: every temporary comes from the arena and
every ufunc writes through ``out=``.  This rule bans the allocation idioms —
``np.zeros``/``np.empty``/``np.concatenate``-style constructors, ``.copy()``
calls, comprehensions, and fresh-array broadcasting arithmetic — inside any
function registered via ``@hot_kernel(...)`` without ``allocates=True``.

Kernels keep their allocating *fallback* branch (the ``workspace is None``
path used by one-shot callers): statements guarded by a ``workspace is
None`` test are exempt, only the arena path is held to the contract.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from ..astutil import dotted_parts
from ..engine import Finding, Module
from . import Rule

__all__ = ["NoAllocInHotKernel"]

#: numpy constructors that always materialize a fresh array.
_ALLOC_FUNCS = frozenset({
    "zeros", "empty", "ones", "full", "eye", "identity",
    "arange", "linspace", "logspace", "array", "copy",
    "concatenate", "stack", "vstack", "hstack", "dstack", "column_stack",
    "tile", "repeat", "fromiter", "frombuffer", "meshgrid",
    "zeros_like", "ones_like", "empty_like", "full_like",
})


def _is_workspace_fallback(test: ast.expr) -> bool:
    """True for tests containing ``workspace is None`` (incl. inside or-chains)."""
    for node in ast.walk(test):
        if (
            isinstance(node, ast.Compare)
            and len(node.ops) == 1
            and isinstance(node.ops[0], ast.Is)
            and isinstance(node.left, ast.Name)
            and node.left.id == "workspace"
            and isinstance(node.comparators[0], ast.Constant)
            and node.comparators[0].value is None
        ):
            return True
    return False


def _iter_arena_nodes(node: ast.AST) -> Iterator[ast.AST]:
    """Walk an AST, skipping bodies guarded by a ``workspace is None`` test."""
    if isinstance(node, ast.If) and _is_workspace_fallback(node.test):
        for stmt in node.orelse:
            yield from _iter_arena_nodes(stmt)
        return
    if isinstance(node, ast.IfExp) and _is_workspace_fallback(node.test):
        yield from _iter_arena_nodes(node.orelse)
        return
    yield node
    for child in ast.iter_child_nodes(node):
        yield from _iter_arena_nodes(child)


def _has_broadcast_subscript(node: ast.expr) -> bool:
    """``a[:, None]``-style reshape inside an expression (fresh-array idiom)."""
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Subscript):
            continue
        elements = sub.slice.elts if isinstance(sub.slice, ast.Tuple) else [sub.slice]
        for element in elements:
            if isinstance(element, ast.Constant) and element.value is None:
                return True
    return False


class NoAllocInHotKernel(Rule):
    code = "RL001"
    name = "no-alloc-in-hot-kernel"
    severity = "error"

    def check(self, module: Module) -> Iterable[Finding]:
        findings: list[Finding] = []
        for kernel in module.kernels:
            if kernel.allocates:
                continue
            for stmt in kernel.node.body:
                for node in _iter_arena_nodes(stmt):
                    reason = self._allocation_reason(node)
                    if reason is not None:
                        findings.append(Finding(
                            code=self.code,
                            message=(
                                f"hot kernel '{kernel.qualname}' {reason} on its arena "
                                "path; draw scratch from the DecodeWorkspace (or "
                                "register the kernel with allocates=True)"
                            ),
                            path=module.path,
                            line=getattr(node, "lineno", kernel.node.lineno),
                            end_line=getattr(node, "end_lineno", kernel.node.lineno),
                            severity=self.severity,
                            symbol=kernel.qualname,
                        ))
        return findings

    @staticmethod
    def _allocation_reason(node: ast.AST) -> str | None:
        if isinstance(node, ast.Call):
            func = node.func
            parts = dotted_parts(func)
            if parts and parts[0] in ("np", "numpy") and parts[-1] in _ALLOC_FUNCS:
                return f"allocates via np.{parts[-1]}(...)"
            if isinstance(func, ast.Name) and func.id in _ALLOC_FUNCS:
                return f"allocates via {func.id}(...)"
            if isinstance(func, ast.Attribute) and func.attr == "copy" and not node.args:
                return "copies an array via .copy()"
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            return "builds a container with a comprehension"
        if isinstance(node, ast.BinOp) and (
            _has_broadcast_subscript(node.left) or _has_broadcast_subscript(node.right)
        ):
            return "materializes a fresh broadcast array (a[:, None]-style arithmetic)"
        return None
