"""RL010 — every wait in the message runtime must be bounded.

The netsim package runs protocols over a transport that may drop, delay or
crash anything; a receive/await loop with no timeout or retry budget can
therefore spin forever on a message that will never arrive.  The round
driver's quorum-*or-timeout* contract (and the reliable outbox's retry
budget) exist precisely so that every wait terminates by construction - this
rule keeps that invariant syntactic.

The check: inside ``netsim`` modules, every ``while`` loop must carry *bound
evidence* - its condition or body must reference a timeout/budget-style name
(``timeout``, ``deadline``, ``max_*``, ``budget``, ``attempts``, ``retries``,
``horizon``, ``remaining``, ``limit``) or count against an explicit
``range(...)``.  ``for`` loops are inherently bounded by their iterable and
pass.  A deliberate unbounded loop (there should be none) would need an
inline ``# repro-lint: disable=RL010``.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable

from ..astutil import dotted_parts
from ..engine import Finding, Module
from . import Rule

__all__ = ["UnboundedWait"]

#: Substrings that mark an identifier as expressing a timeout/retry bound.
_BOUND_TOKENS = (
    "timeout",
    "deadline",
    "max_",
    "budget",
    "attempt",
    "retries",
    "retry",
    "horizon",
    "remaining",
    "limit",
)


def _is_bound_name(name: str) -> bool:
    lowered = name.lower()
    return any(token in lowered for token in _BOUND_TOKENS)


def _bound_evidence(loop: ast.While) -> bool:
    """Whether the loop's condition or body references a bound-style name."""
    for node in ast.walk(loop):
        if isinstance(node, ast.Name) and _is_bound_name(node.id):
            return True
        if isinstance(node, ast.Attribute) and _is_bound_name(node.attr):
            return True
        if isinstance(node, ast.Call):
            parts = dotted_parts(node.func)
            if parts and parts[-1] == "range":
                return True
    return False


class UnboundedWait(Rule):
    code = "RL010"
    name = "unbounded-wait"
    severity = "error"

    def check(self, module: Module) -> Iterable[Finding]:
        if "netsim" not in Path(module.path).parts:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.While):
                continue
            if _bound_evidence(node):
                continue
            yield Finding(
                code=self.code,
                message=(
                    "unbounded wait: while-loop in a netsim module has no "
                    "timeout/retry-budget bound; over a lossy transport it can "
                    "spin forever - bound it (max_slots/deadline/attempts) or "
                    "rewrite it as a for-loop over an explicit budget"
                ),
                path=module.path,
                line=node.lineno,
                end_line=node.end_lineno or node.lineno,
                severity=self.severity,
                symbol=_enclosing(module.tree, node),
            )


def _enclosing(tree: ast.Module, target: ast.While) -> str:
    """Name of the function/method lexically containing ``target``."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if any(sub is target for sub in ast.walk(node)):
                return node.name
    return "<module>"
