"""RL005 — every public hot kernel is parity-tested against its oracle.

PRs 4–5 displaced the readable reference implementations with arena kernels;
the safety net is the *parity oracle*: a slow-but-obvious counterpart
(``decode_reference``, the ``hypot`` expression, the allocating
``decode_arrays`` path) that some test compares bit-for-bit against the hot
kernel.  This rule makes the net load-bearing:

* a public kernel registered via ``@hot_kernel(...)`` must declare an
  ``oracle="..."`` counterpart, and
* at least one file under ``tests/`` must reference **both** the kernel and
  its oracle (by name), i.e. the pair is exercised together somewhere.

Private kernels (leading underscore) are exempt — they are reached through
their public wrappers, which carry the contract.
"""

from __future__ import annotations

from typing import Iterable

from ..engine import Finding, Project
from . import Rule

__all__ = ["ParityOracleCoverage"]


class ParityOracleCoverage(Rule):
    code = "RL005"
    name = "parity-oracle-coverage"
    severity = "error"

    def finalize(self, project: Project) -> Iterable[Finding]:
        for module, kernel in project.kernels:
            func_name = kernel.qualname.rsplit(".", 1)[-1]
            if func_name.startswith("_"):
                continue
            if kernel.oracle is None:
                yield Finding(
                    code=self.code,
                    message=(
                        f"public hot kernel '{kernel.qualname}' declares no parity "
                        "oracle; register it with oracle=\"<reference counterpart>\""
                    ),
                    path=module.path,
                    line=kernel.node.lineno,
                    end_line=kernel.node.lineno,
                    severity=self.severity,
                    symbol=kernel.qualname,
                )
                continue
            covered = any(
                func_name in test.identifiers and kernel.oracle in test.identifiers
                for test in project.tests
            )
            if not covered:
                yield Finding(
                    code=self.code,
                    message=(
                        f"no test references hot kernel '{func_name}' together with "
                        f"its oracle '{kernel.oracle}'; add a bit-for-bit parity test "
                        "under tests/"
                    ),
                    path=module.path,
                    line=kernel.node.lineno,
                    end_line=kernel.node.lineno,
                    severity=self.severity,
                    symbol=kernel.qualname,
                )
