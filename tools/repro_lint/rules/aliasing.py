"""RL002 — an ``out=`` destination may not alias a read operand.

In-place ufunc application (``np.add(total, x, out=total)``) is well defined
for *elementwise* ufuncs and is exactly what the arena kernels do.  What is
not defined is partial overlap — ``out=`` pointing into a *view* of an
operand (``np.multiply(a, b, out=a[1:])``) — and aliasing the operand of a
reduction or gather (``np.maximum.reduce(x, out=x[0])``,
``np.take(base, idx, out=base)``), where the destination is written while
the source is still being read.

The rule is syntactic: it compares the ``out=`` expression against each read
operand.  An *identical* whole operand is allowed for plain elementwise
calls and flagged for reductions/gathers; any other expression sharing the
out-operand's base variable is flagged as a potential partial alias.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..astutil import call_name, root_name
from ..engine import Finding, Module
from . import Rule

__all__ = ["OutAliasing"]

#: ufunc methods and functions where even an exact operand alias is unsafe
#: (the destination is consumed at a different shape/order than it is read).
_REDUCING = frozenset({
    "reduce", "accumulate", "reduceat", "outer", "at",
    "argmax", "argmin", "take", "dot", "matmul", "cumsum", "cumprod",
    "sort", "partition", "mean", "sum", "prod",
})


class OutAliasing(Rule):
    code = "RL002"
    name = "out-aliasing"
    severity = "error"

    def check(self, module: Module) -> Iterable[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            out_kw = next((kw for kw in node.keywords if kw.arg == "out"), None)
            if out_kw is None:
                continue
            out_root = root_name(out_kw.value)
            if out_root is None:  # e.g. out=ws.floats(...): nothing to track
                continue
            out_dump = ast.dump(out_kw.value)
            reducing = call_name(node) in _REDUCING
            operands = list(node.args) + [
                kw.value for kw in node.keywords if kw.arg not in (None, "out")
            ]
            for operand in operands:
                if isinstance(operand, ast.Constant):
                    continue
                if ast.dump(operand) == out_dump:
                    if reducing:
                        findings.append(self._finding(
                            module, node,
                            f"out= aliases operand '{out_root}' in a reducing/"
                            f"gathering call ('{call_name(node)}'); the source is "
                            "read at a different shape than it is written",
                        ))
                    continue  # exact elementwise in-place update: allowed
                if out_root in {n.id for n in ast.walk(operand) if isinstance(n, ast.Name)}:
                    findings.append(self._finding(
                        module, node,
                        f"out= writes into '{out_root}' while a read operand "
                        "references it through a different expression (potential "
                        "partial/broadcast alias)",
                    ))
        return findings

    def _finding(self, module: Module, node: ast.Call, message: str) -> Finding:
        return Finding(
            code=self.code,
            message=message,
            path=module.path,
            line=node.lineno,
            end_line=node.end_lineno or node.lineno,
            severity=self.severity,
        )
