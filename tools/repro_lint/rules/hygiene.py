"""General hygiene rules: RL006–RL009.

* **RL006 slots-or-dataclass** *(warning)* — a plain data-holder class (an
  ``__init__`` that only assigns attributes) should either be a dataclass or
  declare ``__slots__``: the hot paths create these per slot/trial, and slots
  both shrink them and turn attribute typos into errors.
* **RL007 missing-dunder-all** *(warning)* — a library module with public
  top-level definitions should declare ``__all__`` so the re-exporting
  package ``__init__``s and star-imports stay deliberate.
* **RL008 mutable-default-arg** *(error)* — the classic shared-mutable-state
  bug; defaults are evaluated once per process, which in a forked worker
  pool also means *shared across trials*.
* **RL009 bare-except** *(error)* — ``except:`` always, and
  ``except Exception/BaseException`` unless the handler re-raises: swallowing
  errors inside worker processes turns contract violations into silent wrong
  numbers.

RL006/RL007 only fire for library modules (paths outside
``scripts/``/``benchmarks/``/``tests/``/``examples/``).
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..astutil import dotted_parts
from ..engine import Finding, Module
from . import Rule

__all__ = ["BareExcept", "MissingDunderAll", "MutableDefaultArg", "SlotsOrDataclass"]


def _finding(rule: Rule, module: Module, node: ast.AST, message: str, symbol: str = "") -> Finding:
    return Finding(
        code=rule.code,
        message=message,
        path=module.path,
        line=node.lineno,
        end_line=getattr(node, "end_lineno", node.lineno) or node.lineno,
        severity=rule.severity,
        symbol=symbol,
    )


class SlotsOrDataclass(Rule):
    code = "RL006"
    name = "slots-or-dataclass"
    severity = "warning"

    def check(self, module: Module) -> Iterable[Finding]:
        if not module.is_src:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef) or node.bases or node.keywords:
                continue  # subclasses need cooperating bases; skip them
            decorators = [d.func if isinstance(d, ast.Call) else d for d in node.decorator_list]
            if any(dotted_parts(d)[-1:] == ("dataclass",) for d in decorators):
                continue
            has_slots = any(
                isinstance(item, ast.Assign)
                and any(isinstance(t, ast.Name) and t.id == "__slots__" for t in item.targets)
                for item in node.body
            )
            if has_slots:
                continue
            init = next(
                (item for item in node.body
                 if isinstance(item, ast.FunctionDef) and item.name == "__init__"),
                None,
            )
            if init is None or not _is_plain_attribute_init(init):
                continue
            yield _finding(
                self, module, node,
                f"class '{node.name}' is a plain attribute holder; declare "
                "__slots__ or make it a dataclass",
                symbol=node.name,
            )


def _is_plain_attribute_init(init: ast.FunctionDef) -> bool:
    """True when ``__init__`` only assigns ``self.*`` (docstring allowed)."""
    saw_assign = False
    for index, stmt in enumerate(init.body):
        if (
            index == 0
            and isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and isinstance(stmt.value.value, str)
        ):
            continue  # docstring
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            if all(
                isinstance(t, ast.Attribute)
                and isinstance(t.value, ast.Name)
                and t.value.id == "self"
                for t in targets
            ):
                saw_assign = True
                continue
        return False
    return saw_assign


class MissingDunderAll(Rule):
    code = "RL007"
    name = "missing-dunder-all"
    severity = "warning"

    def check(self, module: Module) -> Iterable[Finding]:
        if not module.is_src:
            return
        public = [
            node.name
            for node in module.tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
            and not node.name.startswith("_")
        ]
        if not public:
            return
        has_all = any(
            isinstance(node, ast.Assign)
            and any(isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets)
            for node in module.tree.body
        )
        if not has_all:
            yield _finding(
                self, module, module.tree.body[0],
                f"module defines public names ({', '.join(sorted(public)[:4])}"
                f"{', ...' if len(public) > 4 else ''}) but no __all__",
            )


class MutableDefaultArg(Rule):
    code = "RL008"
    name = "mutable-default-arg"
    severity = "error"

    def check(self, module: Module) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for default in list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]:
                mutable = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                    isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in ("list", "dict", "set", "bytearray")
                )
                if mutable:
                    yield _finding(
                        self, module, default,
                        f"mutable default argument in '{node.name}' is shared "
                        "across calls (and across forked workers); default to "
                        "None and create it inside",
                        symbol=node.name,
                    )


class BareExcept(Rule):
    code = "RL009"
    name = "bare-except"
    severity = "error"

    def check(self, module: Module) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield _finding(
                    self, module, node,
                    "bare 'except:' swallows SystemExit/KeyboardInterrupt; name "
                    "the exceptions you can actually handle",
                )
                continue
            names = {dotted_parts(t)[-1] if dotted_parts(t) else "" for t in (
                node.type.elts if isinstance(node.type, ast.Tuple) else [node.type]
            )}
            if names & {"Exception", "BaseException"}:
                reraises = any(
                    isinstance(sub, ast.Raise) and sub.exc is None
                    for sub in ast.walk(node)
                )
                if not reraises:
                    yield _finding(
                        self, module, node,
                        "overbroad 'except Exception' without re-raise hides "
                        "contract violations; catch specific exceptions or "
                        "re-raise after cleanup",
                    )
