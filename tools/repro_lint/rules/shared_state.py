"""RL004 — shared/adopted ``NetworkState`` objects are read-only.

The parallel fabric maps one physical copy of a state's arrays into every
worker (:func:`repro.state.attach_state` / ``shared_state()``), and
:meth:`NetworkState.from_arrays` adopts caller memory without copying.  A
write through any of these would corrupt every sibling worker — numpy's
``writeable`` flag catches array stores at runtime, but attribute-level
mutation (and mutator *methods*) would only fail probabilistically.

Three sub-checks:

a. names bound from ``attach_state(...)``/``shared_state()``/
   ``NetworkState.from_arrays(...)`` must not receive attribute or element
   stores, and must not have mutator methods
   (``add_nodes``/``remove_nodes``/``move_nodes``) called on them;
b. functions taking a ``NetworkState``-annotated parameter must not write to
   its private (``_``-prefixed) attributes — internals bypass the
   ``_check_mutable`` gate;
c. inside the ``NetworkState`` class itself, every *public* method that
   unlocks its arrays (``.flags.writeable = True``) must first route through
   ``self._check_mutable()``, so adopted/attached states reject mutation.

Deliberate exceptions (the shared-memory lifetime anchor, the fabric's
readonly toggling around sequential fallback) carry inline
``# repro-lint: disable=RL004`` comments.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..astutil import dotted_parts, root_name
from ..engine import Finding, Module
from . import Rule

__all__ = ["SharedStateMutation"]

_ADOPTING_CALLS = frozenset({"attach_state", "shared_state", "from_arrays"})
_MUTATOR_METHODS = frozenset({"add_nodes", "remove_nodes", "move_nodes"})


def _is_adopting_call(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    parts = dotted_parts(node.func)
    return bool(parts) and parts[-1] in _ADOPTING_CALLS


def _scopes(tree: ast.Module) -> Iterable[tuple[str, list[ast.stmt]]]:
    yield "<module>", tree.body
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node.name, node.body


def _walk_scope(stmts: list[ast.stmt]) -> Iterable[ast.AST]:
    """Walk statements without crossing into nested function/class scopes."""
    stack: list[ast.AST] = list(stmts)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue  # nested scope boundary: yielded, not entered
        for child in ast.iter_child_nodes(node):
            stack.append(child)


class SharedStateMutation(Rule):
    code = "RL004"
    name = "shared-state-mutation"
    severity = "error"

    def check(self, module: Module) -> Iterable[Finding]:
        findings: list[Finding] = []
        for scope_name, body in _scopes(module.tree):
            findings.extend(self._check_adopted_names(module, scope_name, body))
        findings.extend(self._check_annotated_params(module))
        findings.extend(self._check_mutable_routing(module))
        return findings

    # -- (a) names bound from adopting constructors ------------------------

    def _check_adopted_names(
        self, module: Module, scope_name: str, body: list[ast.stmt]
    ) -> Iterable[Finding]:
        tainted: set[str] = set()
        for stmt in body:
            for node in _walk_scope([stmt]):
                if isinstance(node, ast.Assign) and _is_adopting_call(node.value):
                    tainted.update(
                        t.id for t in node.targets if isinstance(t, ast.Name)
                    )
                elif isinstance(node, (ast.Assign, ast.AugAssign)) and tainted:
                    targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                    for target in targets:
                        if isinstance(target, (ast.Attribute, ast.Subscript)):
                            root = root_name(target)
                            if root in tainted:
                                yield Finding(
                                    code=self.code,
                                    message=(
                                        f"write through '{root}', a NetworkState adopted "
                                        "from shared/caller memory; shared states are "
                                        "read-only in workers"
                                    ),
                                    path=module.path,
                                    line=node.lineno,
                                    end_line=node.end_lineno or node.lineno,
                                    severity=self.severity,
                                    symbol=scope_name,
                                )
                if isinstance(node, ast.Call) and tainted:
                    func = node.func
                    if (
                        isinstance(func, ast.Attribute)
                        and func.attr in _MUTATOR_METHODS
                        and root_name(func) in tainted
                    ):
                        yield Finding(
                            code=self.code,
                            message=(
                                f"mutator '.{func.attr}()' called on "
                                f"'{root_name(func)}', a NetworkState adopted from "
                                "shared/caller memory"
                            ),
                            path=module.path,
                            line=node.lineno,
                            end_line=node.end_lineno or node.lineno,
                            severity=self.severity,
                            symbol=scope_name,
                        )

    # -- (b) private-attribute writes on annotated parameters --------------

    def _check_annotated_params(self, module: Module) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            state_params = set()
            for arg in node.args.posonlyargs + node.args.args + node.args.kwonlyargs:
                if arg.annotation is None:
                    continue
                annotation = arg.annotation
                text = (
                    annotation.value
                    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str)
                    else ast.unparse(annotation)
                )
                if "NetworkState" in text:
                    state_params.add(arg.arg)
            if not state_params:
                continue
            for sub in ast.walk(node):
                if not isinstance(sub, (ast.Assign, ast.AugAssign)):
                    continue
                targets = sub.targets if isinstance(sub, ast.Assign) else [sub.target]
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr.startswith("_")
                        and isinstance(target.value, ast.Name)
                        and target.value.id in state_params
                    ):
                        yield Finding(
                            code=self.code,
                            message=(
                                f"write to private attribute "
                                f"'{target.value.id}.{target.attr}' bypasses the "
                                "NetworkState._check_mutable gate"
                            ),
                            path=module.path,
                            line=sub.lineno,
                            end_line=sub.end_lineno or sub.lineno,
                            severity=self.severity,
                            symbol=node.name,
                        )

    # -- (c) mutating methods must route through _check_mutable ------------

    def _check_mutable_routing(self, module: Module) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef) or node.name != "NetworkState":
                continue
            for item in node.body:
                if not isinstance(item, ast.FunctionDef):
                    continue
                if item.name.startswith("_"):
                    continue  # private helpers are reached via checked mutators
                unlocks = any(
                    isinstance(sub, ast.Assign)
                    and any(
                        isinstance(t, ast.Attribute)
                        and t.attr == "writeable"
                        and isinstance(t.value, ast.Attribute)
                        and t.value.attr == "flags"
                        for t in sub.targets
                    )
                    and isinstance(sub.value, ast.Constant)
                    and sub.value.value is True
                    for sub in ast.walk(item)
                )
                if not unlocks:
                    continue
                routed = any(
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr == "_check_mutable"
                    for sub in ast.walk(item)
                )
                if not routed:
                    yield Finding(
                        code=self.code,
                        message=(
                            f"mutating method 'NetworkState.{item.name}' unlocks "
                            "its arrays without calling self._check_mutable(); "
                            "adopted/attached states would accept the write"
                        ),
                        path=module.path,
                        line=item.lineno,
                        end_line=item.lineno,
                        severity=self.severity,
                        symbol=f"NetworkState.{item.name}",
                    )
