"""RL011 — telemetry inside a hot kernel must sit behind the enabled guard.

``repro.obs`` promises that *disabled telemetry costs nothing measurable*.
Inside a ``@hot_kernel(...)`` body that promise only holds if every obs
touch — ``OBS.registry.inc(...)``, ``span(...)`` context managers,
``begin_span``/``end_span`` pairs, registry lookups — is reached through the
enabled-guard idiom::

    if OBS.enabled:
        OBS.registry.inc("sim.slots")

which costs one attribute load and a false branch when telemetry is off.
This rule flags any obs reference in a hot-kernel body that is *not* inside
an ``if`` (or conditional expression) whose test reads ``OBS.enabled`` or
calls ``telemetry_enabled()`` / ``kernel_timers_active()``.  Reading
``OBS.enabled`` itself is always allowed — it *is* the guard.

Kernel timing itself never trips this rule: ``instrument_kernels()`` wraps
kernels from the outside, so their bodies stay instrumentation-free.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from ..astutil import dotted_parts
from ..engine import Finding, Module
from . import Rule

__all__ = ["ObsGuardInHotKernel"]

#: Bare helper names whose call records telemetry (module-level obs API).
_OBS_HELPERS = frozenset({
    "span", "begin_span", "end_span", "get_registry", "telemetry",
    "record_span", "enable", "disable",
})

#: Guard predicates: calling these (or reading ``OBS.enabled``) is the idiom.
_GUARD_CALLS = frozenset({"telemetry_enabled", "kernel_timers_active"})


def _is_enabled_guard(test: ast.expr) -> bool:
    """True when the test reads ``OBS.enabled`` or calls a guard predicate."""
    for node in ast.walk(test):
        if isinstance(node, ast.Attribute):
            parts = dotted_parts(node)
            if len(parts) >= 2 and parts[-2] == "OBS" and parts[-1] == "enabled":
                return True
        if isinstance(node, ast.Call):
            parts = dotted_parts(node.func)
            if parts and parts[-1] in _GUARD_CALLS:
                return True
    return False


def _obs_reason(node: ast.AST) -> str | None:
    """Why ``node`` is an unguarded obs touch, or ``None`` if it is not one."""
    if isinstance(node, ast.Attribute):
        parts = dotted_parts(node)
        if parts and parts[0] == "OBS":
            return f"touches {'.'.join(parts)}"
    if isinstance(node, ast.Name) and node.id == "OBS":
        return "passes the OBS singleton around"
    if isinstance(node, ast.Call):
        parts = dotted_parts(node.func)
        if parts and parts[-1] in _OBS_HELPERS and (
            len(parts) == 1 or parts[0] in ("obs", "spans", "runtime")
        ):
            return f"calls {parts[-1]}(...)"
    return None


def _iter_unguarded(node: ast.AST) -> Iterator[tuple[ast.AST, str]]:
    """Yield ``(node, reason)`` for obs touches outside an enabled guard.

    Bodies governed by an enabled-guard test are skipped wholesale (their
    ``else`` branches are still walked); ``OBS.enabled`` reads are treated
    as the guard idiom itself and never flagged.
    """
    if isinstance(node, ast.If) and _is_enabled_guard(node.test):
        for stmt in node.orelse:
            yield from _iter_unguarded(stmt)
        return
    if isinstance(node, ast.IfExp) and _is_enabled_guard(node.test):
        yield from _iter_unguarded(node.orelse)
        return
    if isinstance(node, ast.Attribute):
        parts = dotted_parts(node)
        if len(parts) >= 2 and parts[-2] == "OBS" and parts[-1] == "enabled":
            return  # the guard idiom itself; do not descend into its Name
    reason = _obs_reason(node)
    if reason is not None:
        yield node, reason
        return  # one finding per reference, not one per sub-expression
    for child in ast.iter_child_nodes(node):
        yield from _iter_unguarded(child)


class ObsGuardInHotKernel(Rule):
    code = "RL011"
    name = "obs-guard-in-hot-kernel"
    severity = "error"

    def check(self, module: Module) -> Iterable[Finding]:
        findings: list[Finding] = []
        for kernel in module.kernels:
            for stmt in kernel.node.body:
                for node, reason in _iter_unguarded(stmt):
                    findings.append(Finding(
                        code=self.code,
                        message=(
                            f"hot kernel '{kernel.qualname}' {reason} outside the "
                            "enabled guard; wrap it in `if OBS.enabled:` so "
                            "disabled telemetry stays free"
                        ),
                        path=module.path,
                        line=getattr(node, "lineno", kernel.node.lineno),
                        end_line=getattr(node, "end_lineno", kernel.node.lineno),
                        severity=self.severity,
                        symbol=kernel.qualname,
                    ))
        return findings
