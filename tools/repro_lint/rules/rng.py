"""RL003 — RNG discipline: argument-seeded generators and counter hashes only.

Reproducibility in this repo rests on two conventions:

* **Trial functions** (anything dispatched through the parallel fabric —
  ``map_trials``/``map_trials_cold``/``run_sweep``/``TrialFabric.map``) must
  derive their randomness from their *arguments*:
  ``np.random.default_rng(offset + seed)``.  A generator seeded from
  anything else (or unseeded) makes trials depend on scheduling order.
* **Fade kernels** (the ``_pair_fade``/``fade``/``fade_pairs``/``fade_stack``
  methods of :class:`~repro.dynamics.gain.GainModel` subclasses) must be
  *stateless*: draws come from the SplitMix64 counter hash, never from an
  RNG object constructed inside the kernel, so that fades are a pure
  function of ``(seed, ids, slot)`` regardless of evaluation order.

Everywhere, the legacy stateful API (``np.random.seed``/``np.random.rand``/
...), the stdlib ``random`` module, and unseeded ``np.random.default_rng()``
are banned — they smuggle hidden global state into results.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..astutil import dotted_parts, enclosing_functions
from ..engine import Finding, Module
from . import Rule

__all__ = ["RngDiscipline"]

#: np.random members that are *constructors*, not stateful global draws.
_ALLOWED_RANDOM_MEMBERS = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
})

#: method names that form the fade-kernel contract on GainModel subclasses.
_FADE_KERNELS = frozenset({"_pair_fade", "fade", "fade_pairs", "fade_stack"})

#: callables whose first argument is dispatched as a trial function.
_DISPATCHERS = frozenset({"map_trials", "map_trials_cold", "run_sweep", "map"})


def _np_random_member(node: ast.expr) -> str | None:
    """``np.random.X`` / ``numpy.random.X`` -> ``"X"``; else None."""
    parts = dotted_parts(node)
    if len(parts) == 3 and parts[0] in ("np", "numpy") and parts[1] == "random":
        return parts[2]
    return None


def _argument_derived_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Parameter names plus locals (transitively) assigned from them.

    A single forward pass over the body: ``n, seed = args`` taints ``n`` and
    ``seed`` when ``args`` is a parameter, so ``default_rng(1000 + seed)``
    counts as argument-derived seeding.
    """
    derived = {a.arg for a in (
        func.args.posonlyargs + func.args.args + func.args.kwonlyargs
    )}
    for vararg in (func.args.vararg, func.args.kwarg):
        if vararg is not None:
            derived.add(vararg.arg)

    def target_names(target: ast.expr) -> list[str]:
        if isinstance(target, ast.Name):
            return [target.id]
        if isinstance(target, (ast.Tuple, ast.List)):
            return [name for elt in target.elts for name in target_names(elt)]
        if isinstance(target, ast.Starred):
            return target_names(target.value)
        return []

    changed = True
    while changed:  # fixpoint: ast.walk order need not match source order
        changed = False
        for node in ast.walk(func):
            value = None
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                value, targets = node.value, node.targets
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                value, targets = node.value, [node.target]
            elif isinstance(node, ast.For):
                value, targets = node.iter, [node.target]
            if value is None:
                continue
            used = {n.id for n in ast.walk(value) if isinstance(n, ast.Name)}
            if used & derived:
                for target in targets:
                    for name in target_names(target):
                        if name not in derived:
                            derived.add(name)
                            changed = True
    return derived


def _gainmodel_classes(tree: ast.Module) -> list[ast.ClassDef]:
    classes = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            names = {node.name}
            for base in node.bases:
                parts = dotted_parts(base)
                if parts:
                    names.add(parts[-1])
            if any(name.endswith("GainModel") or name.endswith("Gain") for name in names):
                classes.append(node)
    return classes


class RngDiscipline(Rule):
    code = "RL003"
    name = "rng-discipline"
    severity = "error"

    def check(self, module: Module) -> Iterable[Finding]:
        findings: list[Finding] = []
        findings.extend(self._global_checks(module))
        findings.extend(self._trial_function_checks(module))
        findings.extend(self._fade_kernel_checks(module))
        return findings

    # -- global discipline -------------------------------------------------

    def _global_checks(self, module: Module) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                imported = getattr(node, "module", None) or ""
                names = [alias.name for alias in node.names]
                if imported == "random" or "random" in names and isinstance(node, ast.Import):
                    yield self._finding(
                        module, node,
                        "stdlib 'random' is banned; use an argument-seeded "
                        "np.random.default_rng or a counter hash",
                    )
            elif isinstance(node, ast.Call):
                member = _np_random_member(node.func)
                if member is not None and member not in _ALLOWED_RANDOM_MEMBERS:
                    yield self._finding(
                        module, node,
                        f"stateful global RNG call np.random.{member}(...); "
                        "construct an explicit seeded Generator instead",
                    )
                elif member == "default_rng" and not node.args and not node.keywords:
                    yield self._finding(
                        module, node,
                        "unseeded np.random.default_rng() draws OS entropy; "
                        "seed it from an argument or experiment constant",
                    )

    # -- trial functions ---------------------------------------------------

    def _trial_function_checks(self, module: Module) -> Iterable[Finding]:
        trial_names = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                parts = dotted_parts(node.func)
                if parts and parts[-1] in _DISPATCHERS and node.args:
                    first = node.args[0]
                    if isinstance(first, ast.Name):
                        trial_names.add(first.id)
        if not trial_names:
            return
        for qualname, func in enclosing_functions(module.tree):
            if func.name not in trial_names:
                continue
            derived = _argument_derived_names(func)
            for node in ast.walk(func):
                if not isinstance(node, ast.Call):
                    continue
                member = _np_random_member(node.func)
                is_ctor = member in ("default_rng", "Generator") or (
                    isinstance(node.func, ast.Name) and node.func.id == "default_rng"
                )
                if not is_ctor:
                    continue
                seed_names = {
                    n.id
                    for arg in list(node.args) + [kw.value for kw in node.keywords]
                    for n in ast.walk(arg)
                    if isinstance(n, ast.Name)
                }
                if not (seed_names & derived):
                    yield Finding(
                        code=self.code,
                        message=(
                            f"trial function '{qualname}' constructs a Generator whose "
                            "seed does not derive from its arguments; trials must be "
                            "a pure function of (config, seed)"
                        ),
                        path=module.path,
                        line=node.lineno,
                        end_line=node.end_lineno or node.lineno,
                        severity=self.severity,
                        symbol=qualname,
                    )

    # -- fade kernels ------------------------------------------------------

    def _fade_kernel_checks(self, module: Module) -> Iterable[Finding]:
        for cls in _gainmodel_classes(module.tree):
            for item in cls.body:
                if not isinstance(item, ast.FunctionDef) or item.name not in _FADE_KERNELS:
                    continue
                for node in ast.walk(item):
                    banned = None
                    if isinstance(node, ast.Attribute) and _np_random_member(node):
                        banned = "np.random"
                    elif isinstance(node, ast.Name) and node.id == "default_rng":
                        banned = "default_rng"
                    if banned is not None:
                        yield Finding(
                            code=self.code,
                            message=(
                                f"fade kernel '{cls.name}.{item.name}' uses {banned}; "
                                "fade draws must be stateless counter hashes "
                                "(SplitMix64 over (seed, ids, slot))"
                            ),
                            path=module.path,
                            line=node.lineno,
                            end_line=getattr(node, "end_lineno", node.lineno) or node.lineno,
                            severity=self.severity,
                            symbol=f"{cls.name}.{item.name}",
                        )

    def _finding(self, module: Module, node: ast.AST, message: str) -> Finding:
        return Finding(
            code=self.code,
            message=message,
            path=module.path,
            line=node.lineno,
            end_line=getattr(node, "end_lineno", node.lineno) or node.lineno,
            severity=self.severity,
        )
