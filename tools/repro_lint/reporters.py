"""Text and JSON reporters for repro-lint results.

Both reporters render the *same* :class:`~tools.repro_lint.engine.LintResult`
and agree on counts by construction; the round-trip test in
``tests/test_repro_lint.py`` pins that.
"""

from __future__ import annotations

import json

from .engine import LintResult

__all__ = ["render_json", "render_text", "summary_counts"]


def summary_counts(result: LintResult) -> dict[str, int]:
    """The shared summary both reporters embed."""
    return {
        "files": result.files,
        "errors": len(result.errors),
        "warnings": len(result.warnings),
        "suppressed": result.suppressed,
        "baselined": result.baselined,
    }


def render_text(result: LintResult) -> str:
    lines = []
    for finding in result.findings:
        location = f"{finding.path}:{finding.line}"
        symbol = f" [{finding.symbol}]" if finding.symbol else ""
        lines.append(
            f"{location}: {finding.code} {finding.severity}: {finding.message}{symbol}"
        )
    counts = summary_counts(result)
    lines.append(
        f"repro-lint: {counts['files']} file(s), {counts['errors']} error(s), "
        f"{counts['warnings']} warning(s)"
        f" ({counts['suppressed']} suppressed, {counts['baselined']} baselined)"
    )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    payload = {
        "findings": [finding.as_dict() for finding in result.findings],
        "summary": summary_counts(result),
    }
    return json.dumps(payload, indent=2, sort_keys=True)
