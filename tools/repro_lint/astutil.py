"""Small AST helpers shared by the repro-lint rules."""

from __future__ import annotations

import ast
from typing import Iterator

__all__ = [
    "call_name",
    "dotted_parts",
    "enclosing_functions",
    "is_numpy_attr",
    "root_name",
]


def dotted_parts(node: ast.expr) -> tuple[str, ...]:
    """``a.b.c`` -> ``("a", "b", "c")``; empty tuple if not a dotted name."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


def root_name(node: ast.expr) -> str | None:
    """Base variable of an attribute/subscript chain: ``a.b[0].c`` -> ``a``."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def call_name(node: ast.Call) -> str:
    """Last dotted component of the callee: ``np.random.default_rng`` -> ``default_rng``."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def is_numpy_attr(node: ast.expr, *names: str) -> bool:
    """True if ``node`` is ``np.X``/``numpy.X`` with ``X`` in ``names``."""
    parts = dotted_parts(node)
    return (
        len(parts) == 2
        and parts[0] in ("np", "numpy")
        and (not names or parts[1] in names)
    )


def enclosing_functions(tree: ast.Module) -> Iterator[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]:
    """Yield ``(qualname, def)`` for every function in the module, outermost first."""

    def visit(node: ast.AST, prefix: str) -> Iterator[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                yield qualname, child
                yield from visit(child, f"{qualname}.")
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, f"{prefix}{child.name}.")

    yield from visit(tree, "")
